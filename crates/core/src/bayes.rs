//! Bayes signatures — the third signature class of Polygraph (the
//! paper's reference [14]), adapted to the leaksig pipeline.
//!
//! Where a conjunction signature demands *all* tokens and a probabilistic
//! one a token *fraction*, a Bayes signature scores each token by how
//! much more often it appears in suspicious than in normal traffic and
//! flags packets whose summed score clears a threshold:
//!
//! ```text
//! w(t) = ln( (P(t | suspicious) + ε) / (P(t | normal) + ε) )
//! score(p) = Σ_{t present in p} w(t)      flag iff score ≥ θ
//! ```
//!
//! θ is set from the training data itself, Polygraph-style: the maximum
//! score any *normal* training packet achieves, plus a small margin — a
//! zero-training-false-positive calibration.
//!
//! The token pool is harvested from an all-nodes conjunction generation
//! pass, so the two approaches see the same invariants; the Bayes layer
//! re-weighs rather than re-discovers them.

use crate::pipeline::{generate_signatures, PipelineConfig};
use crate::signature::{Field, FieldToken};
use leaksig_http::HttpPacket;

/// A trained token-scoring signature.
#[derive(Debug, Clone)]
pub struct BayesSignature {
    tokens: Vec<FieldToken>,
    weights: Vec<f64>,
    threshold: f64,
}

/// Training parameters.
#[derive(Debug, Clone, Copy)]
pub struct BayesConfig {
    /// Laplace-style smoothing added to both occurrence rates.
    pub epsilon: f64,
    /// Margin added to the calibrated threshold.
    pub margin: f64,
    /// Drop tokens whose absolute weight falls below this (they carry no
    /// discriminative signal and only cost matching time).
    pub min_abs_weight: f64,
}

impl Default for BayesConfig {
    fn default() -> Self {
        BayesConfig {
            epsilon: 0.01,
            margin: 1e-6,
            min_abs_weight: 0.1,
        }
    }
}

fn token_present(t: &FieldToken, packet: &HttpPacket, rline: &str) -> bool {
    let hay: &[u8] = match t.field {
        Field::RequestLine => rline.as_bytes(),
        Field::Cookie => packet.cookie(),
        Field::Body => &packet.body,
    };
    hay.windows(t.bytes().len().min(hay.len()).max(1))
        .any(|w| w == t.bytes())
}

fn rline_of(packet: &HttpPacket) -> String {
    format!(
        "{} {}",
        packet.request_line.method.as_str(),
        packet.request_line.target
    )
}

impl BayesSignature {
    /// Train from labelled samples. The token pool comes from running the
    /// conjunction generator over `suspicious` with `pipeline_config`.
    /// Returns `None` when no tokens survive weighting (e.g. empty or
    /// degenerate training sets).
    pub fn train(
        suspicious: &[&HttpPacket],
        normal: &[&HttpPacket],
        pipeline_config: &PipelineConfig,
        config: BayesConfig,
    ) -> Option<BayesSignature> {
        if suspicious.is_empty() {
            return None;
        }
        // Harvest a deduplicated token pool.
        let set = generate_signatures(suspicious, pipeline_config);
        let mut pool: Vec<FieldToken> = Vec::new();
        let mut seen: std::collections::HashSet<(u8, Vec<u8>)> = Default::default();
        for sig in &set.signatures {
            for t in &sig.tokens {
                if seen.insert((t.field as u8, t.bytes().to_vec())) {
                    pool.push(t.clone());
                }
            }
        }
        if pool.is_empty() {
            return None;
        }

        // Occurrence rates per class.
        let sus_rlines: Vec<String> = suspicious.iter().map(|p| rline_of(p)).collect();
        let norm_rlines: Vec<String> = normal.iter().map(|p| rline_of(p)).collect();
        let rate = |t: &FieldToken, packets: &[&HttpPacket], rlines: &[String]| -> f64 {
            if packets.is_empty() {
                return 0.0;
            }
            let hits = packets
                .iter()
                .zip(rlines)
                .filter(|(p, r)| token_present(t, p, r))
                .count();
            hits as f64 / packets.len() as f64
        };

        let mut tokens = Vec::new();
        let mut weights = Vec::new();
        for t in pool {
            let p_sus = rate(&t, suspicious, &sus_rlines);
            let p_norm = rate(&t, normal, &norm_rlines);
            let w = ((p_sus + config.epsilon) / (p_norm + config.epsilon)).ln();
            if w.abs() >= config.min_abs_weight {
                tokens.push(t);
                weights.push(w);
            }
        }
        if tokens.is_empty() {
            return None;
        }

        let mut sig = BayesSignature {
            tokens,
            weights,
            threshold: f64::NEG_INFINITY,
        };
        // Calibrate θ: never flag a normal training packet.
        let max_normal = normal
            .iter()
            .map(|p| sig.score(p))
            .fold(f64::NEG_INFINITY, f64::max);
        // And never miss every suspicious packet: θ must be reachable.
        let max_sus = suspicious
            .iter()
            .map(|p| sig.score(p))
            .fold(f64::NEG_INFINITY, f64::max);
        let theta = if max_normal.is_finite() {
            max_normal + config.margin
        } else {
            0.0
        };
        sig.threshold = theta.min(max_sus);
        Some(sig)
    }

    /// Number of weighted tokens.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Calibrated decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Summed token score of `packet`.
    pub fn score(&self, packet: &HttpPacket) -> f64 {
        let rline = rline_of(packet);
        self.tokens
            .iter()
            .zip(&self.weights)
            .filter(|(t, _)| token_present(t, packet, &rline))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Whether `packet` clears the threshold.
    pub fn matches(&self, packet: &HttpPacket) -> bool {
        self.score(packet) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaksig_http::RequestBuilder;
    use std::net::Ipv4Addr;

    fn leak(slot: usize) -> HttpPacket {
        RequestBuilder::get("/getad")
            .query("imei", "355195000000017")
            .query("slot", &slot.to_string())
            .query("fmt", "json")
            .cookie("sid=abcdef0123456789")
            .destination(Ipv4Addr::new(203, 0, 113, 3), 80, "ad-maker.info")
            .build()
    }

    fn clean(i: usize) -> HttpPacket {
        RequestBuilder::get("/api/items")
            .query("page", &i.to_string())
            .destination(Ipv4Addr::new(198, 51, 100, 7), 80, "api.example.jp")
            .build()
    }

    fn train() -> BayesSignature {
        let sus: Vec<HttpPacket> = (0..20).map(leak).collect();
        let norm: Vec<HttpPacket> = (0..40).map(clean).collect();
        let sus_refs: Vec<&HttpPacket> = sus.iter().collect();
        let norm_refs: Vec<&HttpPacket> = norm.iter().collect();
        BayesSignature::train(
            &sus_refs,
            &norm_refs,
            &PipelineConfig::default(),
            BayesConfig::default(),
        )
        .expect("trains")
    }

    #[test]
    fn separates_classes_with_calibrated_threshold() {
        let sig = train();
        assert!(sig.token_count() > 0);
        // Fresh same-module traffic scores above threshold.
        assert!(sig.matches(&leak(999)));
        // Fresh benign traffic scores below.
        assert!(!sig.matches(&clean(999)));
        assert!(sig.score(&leak(999)) > sig.score(&clean(999)));
    }

    #[test]
    fn zero_training_false_positives_by_construction() {
        let sig = train();
        for i in 0..40 {
            assert!(!sig.matches(&clean(i)), "training-normal packet flagged");
        }
    }

    #[test]
    fn empty_training_sets() {
        let norm: Vec<HttpPacket> = (0..5).map(clean).collect();
        let norm_refs: Vec<&HttpPacket> = norm.iter().collect();
        assert!(BayesSignature::train(
            &[],
            &norm_refs,
            &PipelineConfig::default(),
            BayesConfig::default()
        )
        .is_none());

        // No normal data at all: still trains, θ defaults low enough to
        // catch the suspicious class.
        let sus: Vec<HttpPacket> = (0..5).map(leak).collect();
        let sus_refs: Vec<&HttpPacket> = sus.iter().collect();
        let sig = BayesSignature::train(
            &sus_refs,
            &[],
            &PipelineConfig::default(),
            BayesConfig::default(),
        )
        .expect("trains without normals");
        assert!(sig.matches(&leak(7)));
    }

    #[test]
    fn partial_token_survival_still_matches() {
        // A module revision drops the cookie and renames one param; the
        // score degrades gracefully instead of failing a conjunction.
        let sig = train();
        // The imei param is renamed, but the fmt suffix and session cookie
        // invariants survive.
        let revised = RequestBuilder::get("/getad")
            .query("udid", "355195000000017")
            .query("slot", "3")
            .query("fmt", "json")
            .cookie("sid=abcdef0123456789")
            .destination(Ipv4Addr::new(203, 0, 113, 3), 80, "ad-maker.info")
            .build();
        assert!(
            sig.matches(&revised),
            "score {} vs threshold {}",
            sig.score(&revised),
            sig.threshold()
        );
    }
}
