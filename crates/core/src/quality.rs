//! Clustering quality metrics.
//!
//! The paper evaluates only end-to-end detection rates, but tuning the
//! §IV distance requires seeing the intermediate object: how well do the
//! clusters line up with ground truth (which module/leak a packet came
//! from)? Two standard external metrics:
//!
//! * [`purity`] — the fraction of points whose cluster's majority label
//!   matches their own. Insensitive to splitting (many pure shards score
//!   1.0), so read it together with the cluster count.
//! * [`rand_index`] — pairwise agreement between the clustering and the
//!   labels; penalises both merging across labels and splitting within
//!   them.

use std::collections::HashMap;

/// Purity of `clusters` against `labels` (one label per point index).
/// Returns a value in `[0, 1]`; empty input scores 1.0.
pub fn purity<L: Eq + std::hash::Hash>(clusters: &[Vec<usize>], labels: &[L]) -> f64 {
    let total: usize = clusters.iter().map(|c| c.len()).sum();
    if total == 0 {
        return 1.0;
    }
    let mut majority_sum = 0usize;
    for cluster in clusters {
        let mut counts: HashMap<&L, usize> = HashMap::new();
        for &i in cluster {
            *counts.entry(&labels[i]).or_default() += 1;
        }
        majority_sum += counts.values().copied().max().unwrap_or(0);
    }
    majority_sum as f64 / total as f64
}

/// Rand index of `clusters` against `labels`: the fraction of point pairs
/// on which the clustering and the labelling agree (same-cluster ∧
/// same-label, or different-cluster ∧ different-label). `[0, 1]`; fewer
/// than two points scores 1.0.
pub fn rand_index<L: Eq + std::hash::Hash>(clusters: &[Vec<usize>], labels: &[L]) -> f64 {
    // Map each point to its cluster id.
    let total: usize = clusters.iter().map(|c| c.len()).sum();
    if total < 2 {
        return 1.0;
    }
    let mut cluster_of: HashMap<usize, usize> = HashMap::new();
    for (cid, cluster) in clusters.iter().enumerate() {
        for &i in cluster {
            cluster_of.insert(i, cid);
        }
    }
    let points: Vec<usize> = {
        let mut v: Vec<usize> = cluster_of.keys().copied().collect();
        v.sort_unstable();
        v
    };
    let mut agree = 0u64;
    let mut pairs = 0u64;
    for (a_pos, &a) in points.iter().enumerate() {
        for &b in &points[a_pos + 1..] {
            let same_cluster = cluster_of[&a] == cluster_of[&b];
            let same_label = labels[a] == labels[b];
            if same_cluster == same_label {
                agree += 1;
            }
            pairs += 1;
        }
    }
    agree as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let clusters = vec![vec![0, 1, 2], vec![3, 4]];
        let labels = ["a", "a", "a", "b", "b"];
        assert_eq!(purity(&clusters, &labels), 1.0);
        assert_eq!(rand_index(&clusters, &labels), 1.0);
    }

    #[test]
    fn one_big_cluster_has_majority_purity() {
        let clusters = vec![vec![0, 1, 2, 3, 4]];
        let labels = ["a", "a", "a", "b", "b"];
        assert_eq!(purity(&clusters, &labels), 0.6);
        // Rand: agreeing pairs are the same-label ones (3C2 + 2C2 = 4) of 10.
        assert_eq!(rand_index(&clusters, &labels), 0.4);
    }

    #[test]
    fn singletons_have_perfect_purity_but_poor_rand() {
        let clusters = vec![vec![0], vec![1], vec![2], vec![3]];
        let labels = ["a", "a", "b", "b"];
        assert_eq!(purity(&clusters, &labels), 1.0);
        // Agreeing pairs: the cross-label ones (4) of 6.
        assert!((rand_index(&clusters, &labels) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<Vec<usize>> = Vec::new();
        let labels: [&str; 0] = [];
        assert_eq!(purity(&empty, &labels), 1.0);
        assert_eq!(rand_index(&empty, &labels), 1.0);
        let single = vec![vec![0]];
        assert_eq!(purity(&single, &["x"]), 1.0);
        assert_eq!(rand_index(&single, &["x"]), 1.0);
    }

    #[test]
    fn mixed_clusters_are_penalised() {
        // Two clusters, each half-and-half: worst-case purity 0.5.
        let clusters = vec![vec![0, 2], vec![1, 3]];
        let labels = ["a", "a", "b", "b"];
        assert_eq!(purity(&clusters, &labels), 0.5);
        let ri = rand_index(&clusters, &labels);
        assert!(ri < 0.5, "rand {ri}");
    }
}
