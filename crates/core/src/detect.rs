//! The detector: apply a signature set to packets.
//!
//! Matching runs on the compiled engine ([`crate::engine`]): construction
//! compiles the set's tokens into per-field multi-pattern automata once,
//! and every `match_*` call is a linear pass over the packet's bytes
//! regardless of signature count. [`Detector::scan`] additionally fans a
//! large batch out across cores with scoped threads (mirroring
//! [`crate::matrix::pairwise`]), one scratch per worker.

use crate::engine::{CompiledDetector, FieldBytes, ScanScratch, SensitiveProbe};
use crate::signature::{rline_view, ConjunctionSignature, SignatureSet};
use leaksig_http::{
    parse_request_limited, HttpPacket, PacketView, ParseArena, ParseLimits, ViewOutcome,
};
use std::net::Ipv4Addr;
use std::sync::Mutex;

/// How a signature is judged against a packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchMode {
    /// Every token must be present (the paper's conjunction semantics).
    Conjunction,
    /// At least this fraction of tokens must be present — *probabilistic
    /// signatures*, the §VI future-work extension. `Fraction(1.0)` is
    /// equivalent to [`MatchMode::Conjunction`].
    Fraction(f64),
    /// Tokens must appear in order within each field (Polygraph's
    /// token-subsequence class) — strictly stronger than the conjunction,
    /// trading recall for resistance to token-shuffling evasion.
    Ordered,
}

/// A compiled signature set ready for high-volume matching.
#[derive(Debug)]
pub struct Detector {
    set: SignatureSet,
    mode: MatchMode,
    engine: CompiledDetector,
    /// Scratch for the single-packet entry points; batch scans use
    /// per-thread scratches instead of contending on this lock.
    scratch: Mutex<ScanScratch>,
}

impl Clone for Detector {
    fn clone(&self) -> Self {
        Detector {
            set: self.set.clone(),
            mode: self.mode,
            engine: self.engine.clone(),
            scratch: Mutex::new(self.engine.scratch()),
        }
    }
}

/// A positive detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Id of the first matching signature.
    pub signature_id: u32,
}

/// A detection with the evidence a user-facing prompt needs: which
/// signature fired, where its cluster's traffic was headed, and the
/// matched invariant tokens (rendered lossily for display).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// Id of the matching signature.
    pub signature_id: u32,
    /// Destinations observed in the signature's source cluster.
    pub hosts: Vec<String>,
    /// The tokens that matched, longest first, as display strings.
    pub matched_tokens: Vec<String>,
}

/// One raw request to scan: wire bytes plus the destination the capture
/// was headed to.
#[derive(Debug, Clone, Copy)]
pub struct RawPacket<'a> {
    /// The raw request bytes as received.
    pub raw: &'a [u8],
    /// Destination IPv4 address.
    pub ip: Ipv4Addr,
    /// Destination TCP port.
    pub port: u16,
}

/// The verdict for one scanned packet on the zero-copy path: the first
/// matching signature's wire id, the sensitive-payload tag mask collected
/// in the same pass, and whether the bytes failed to parse at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanVerdict {
    /// Wire id of the first matching signature, if any.
    pub matched: Option<u32>,
    /// Sensitive-probe tag bitmask (always `0` without a probe; see
    /// [`Detector::with_probe`]).
    pub tags: u64,
    /// The bytes were rejected by the parser: no fields were scanned.
    pub parse_failed: bool,
}

impl ScanVerdict {
    const PARSE_FAILED: ScanVerdict = ScanVerdict {
        matched: None,
        tags: 0,
        parse_failed: true,
    };
}

/// A reusable per-thread scanning context over a [`Detector`]'s engine:
/// automaton scratch, parse arena, and verdict buffer all persist across
/// calls, so steady-state scanning performs no per-packet allocation.
/// Obtain one per worker thread via [`Detector::scanner`].
#[derive(Debug)]
pub struct PacketScanner<'d> {
    engine: &'d CompiledDetector,
    scratch: ScanScratch,
    arena: ParseArena,
    verdicts: Vec<ScanVerdict>,
}

impl PacketScanner<'_> {
    /// Scan a borrowed packet view (already parsed). Allocation-free.
    pub fn scan_view(&mut self, view: &PacketView<'_>) -> ScanVerdict {
        self.scan_fields(FieldBytes::from_view(view))
    }

    /// Scan pre-extracted field bytes. Allocation-free.
    pub fn scan_fields(&mut self, fields: FieldBytes<'_>) -> ScanVerdict {
        let ev = self.engine.verdict(&mut self.scratch, fields);
        ScanVerdict {
            matched: ev.first.map(|i| self.engine.wire_id(i as usize)),
            tags: ev.tags,
            parse_failed: false,
        }
    }

    /// Scan an owned packet (pays one request-line formatting allocation;
    /// the borrowed entry points are the hot path).
    pub fn scan_packet(&mut self, packet: &HttpPacket) -> ScanVerdict {
        let rline = rline_view(packet);
        self.scan_fields(FieldBytes {
            rline: rline.as_bytes(),
            cookie: packet.cookie(),
            body: &packet.body,
        })
    }

    /// Parse raw wire bytes with the zero-copy parser and scan the view.
    /// Falls back to the owned parser when the view parser reports an
    /// opaque input (non-UTF-8 request line) — verdicts stay identical to
    /// the owned path by construction. Parser rejects yield a
    /// `parse_failed` verdict.
    pub fn scan_raw(&mut self, raw: &[u8], ip: Ipv4Addr, port: u16, limits: &ParseLimits) -> ScanVerdict {
        // Views are transient here (dead before the next parse), so the
        // arena is recycled per call and never grows past one packet.
        self.arena.reset();
        match leaksig_http::parse_request_view(raw, ip, port, limits, &mut self.arena) {
            Ok(ViewOutcome::View(view)) => self.scan_view(&view),
            Ok(ViewOutcome::Opaque) => match parse_request_limited(raw, ip, port, limits) {
                Ok(packet) => self.scan_packet(&packet),
                Err(_) => ScanVerdict::PARSE_FAILED,
            },
            Err(_) => ScanVerdict::PARSE_FAILED,
        }
    }

    /// Scan a batch of raw records, reusing the scanner's verdict buffer
    /// (valid until the next call). The streaming entry point for ingest
    /// loops: batch-amortized O(1) allocations per packet.
    pub fn scan_batch<'a>(
        &mut self,
        records: impl IntoIterator<Item = RawPacket<'a>>,
        limits: &ParseLimits,
    ) -> &[ScanVerdict] {
        self.verdicts.clear();
        for r in records {
            let v = self.scan_raw(r.raw, r.ip, r.port, limits);
            self.verdicts.push(v);
        }
        &self.verdicts
    }
}

impl Detector {
    /// Compile a signature set for conjunction matching. Construction is
    /// where the multi-pattern automata are built — install/restore time
    /// on a device, never the per-packet path.
    pub fn new(set: SignatureSet) -> Self {
        Self::with_mode(set, MatchMode::Conjunction)
    }

    /// Compile a signature set with an explicit match mode.
    pub fn with_mode(set: SignatureSet, mode: MatchMode) -> Self {
        Self::build(set, mode, None)
    }

    /// Compile with a sensitive-payload probe folded into the scan pass:
    /// every [`ScanVerdict`] then carries the probe's tag mask for free
    /// (single pass over the field bytes — see
    /// [`crate::payload::PayloadCheck::probe`]).
    pub fn with_probe(set: SignatureSet, mode: MatchMode, probe: &SensitiveProbe) -> Self {
        Self::build(set, mode, Some(probe))
    }

    fn build(set: SignatureSet, mode: MatchMode, probe: Option<&SensitiveProbe>) -> Self {
        if let MatchMode::Fraction(f) = mode {
            assert!(
                (0.0..=1.0).contains(&f) && f > 0.0,
                "fraction threshold must be in (0, 1], got {f}"
            );
        }
        let engine = CompiledDetector::compile_with_probe(&set, mode, probe);
        let scratch = Mutex::new(engine.scratch());
        Detector {
            set,
            mode,
            engine,
            scratch,
        }
    }

    /// A reusable scanning context borrowing this detector's engine.
    /// Allocate one per worker thread; every scan call after warmup is
    /// allocation-free.
    pub fn scanner(&self) -> PacketScanner<'_> {
        PacketScanner {
            engine: &self.engine,
            scratch: self.engine.scratch(),
            arena: ParseArena::new(),
            verdicts: Vec::new(),
        }
    }

    /// Batch-scan raw records on the zero-copy path, fanning large
    /// batches out across cores (contiguous chunks, one scanner per
    /// worker — the verdict vector is deterministic whatever the thread
    /// count).
    pub fn scan_batch(&self, records: &[RawPacket<'_>], limits: &ParseLimits) -> Vec<ScanVerdict> {
        /// Below this, thread spawn overhead beats the win.
        const PAR_THRESHOLD: usize = 256;
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if records.len() < PAR_THRESHOLD || threads < 2 {
            let mut scanner = self.scanner();
            return records
                .iter()
                .map(|r| scanner.scan_raw(r.raw, r.ip, r.port, limits))
                .collect();
        }
        let mut out = vec![ScanVerdict::PARSE_FAILED; records.len()];
        let chunk = records.len().div_ceil(threads);
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for (rec_chunk, out_chunk) in records.chunks(chunk).zip(out.chunks_mut(chunk)) {
                handles.push(scope.spawn(move |_| {
                    let mut scanner = self.scanner();
                    for (r, slot) in rec_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = scanner.scan_raw(r.raw, r.ip, r.port, limits);
                    }
                }));
            }
            for h in handles {
                h.join().expect("scan worker panicked");
            }
        })
        .expect("crossbeam scope");
        out
    }

    /// The underlying signatures.
    pub fn signatures(&self) -> &[ConjunctionSignature] {
        &self.set.signatures
    }

    /// The compiled engine (introspection: pattern/state counts, or
    /// per-thread scratches for custom batch drivers).
    pub fn engine(&self) -> &CompiledDetector {
        &self.engine
    }

    /// First matching signature, if any.
    pub fn match_packet(&self, packet: &HttpPacket) -> Option<Detection> {
        let mut scratch = self.scratch.lock().expect("detector scratch");
        self.engine
            .match_first(&mut scratch, packet)
            .map(|i| Detection {
                signature_id: self.set.signatures[i].id,
            })
    }

    /// All matching signature ids (diagnostics; `match_packet` is the
    /// fast path).
    pub fn matches_all(&self, packet: &HttpPacket) -> Vec<u32> {
        let mut scratch = self.scratch.lock().expect("detector scratch");
        self.engine.matched_ids(&mut scratch, packet)
    }

    /// Like [`Detector::match_packet`], but returns the evidence for a
    /// user-facing prompt ("this request matches signature N, whose
    /// cluster sent traffic to these hosts, on these invariants").
    pub fn explain(&self, packet: &HttpPacket) -> Option<Explanation> {
        let first = {
            let mut scratch = self.scratch.lock().expect("detector scratch");
            self.engine.match_first(&mut scratch, packet)?
        };
        let sig = &self.set.signatures[first];
        let matched_tokens = sig
            .tokens
            .iter()
            .map(|t| String::from_utf8_lossy(t.bytes()).into_owned())
            .collect();
        Some(Explanation {
            signature_id: sig.id,
            hosts: sig.hosts.clone(),
            matched_tokens,
        })
    }

    /// Detection mask over a packet slice. Large batches are fanned out
    /// across all available cores in contiguous chunks (deterministic
    /// mask, whatever the thread count).
    pub fn scan<'a, I>(&self, packets: I) -> Vec<bool>
    where
        I: IntoIterator<Item = &'a HttpPacket>,
    {
        let refs: Vec<&HttpPacket> = packets.into_iter().collect();
        self.scan_refs(&refs)
    }

    /// [`Detector::scan`] over an already-collected slice.
    pub fn scan_refs(&self, packets: &[&HttpPacket]) -> Vec<bool> {
        /// Below this, thread spawn overhead beats the win.
        const PAR_THRESHOLD: usize = 256;
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if packets.len() < PAR_THRESHOLD || threads < 2 {
            let mut scratch = self.engine.scratch();
            return packets
                .iter()
                .map(|p| self.engine.match_first(&mut scratch, p).is_some())
                .collect();
        }

        let mut mask = vec![false; packets.len()];
        let chunk = packets.len().div_ceil(threads);
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for (packet_chunk, mask_chunk) in
                packets.chunks(chunk).zip(mask.chunks_mut(chunk))
            {
                handles.push(scope.spawn(move |_| {
                    let mut scratch = self.engine.scratch();
                    for (p, m) in packet_chunk.iter().zip(mask_chunk.iter_mut()) {
                        *m = self.engine.match_first(&mut scratch, p).is_some();
                    }
                }));
            }
            for h in handles {
                h.join().expect("scan worker panicked");
            }
        })
        .expect("crossbeam scope");
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{signature_from_cluster, SignatureConfig};
    use leaksig_http::RequestBuilder;
    use std::net::Ipv4Addr;

    fn sig_for(host: &str, id_param: &str, value: &str, id: u32) -> ConjunctionSignature {
        let mk = |slot: &str| {
            RequestBuilder::get("/ad")
                .query(id_param, value)
                .query("slot", slot)
                .destination(Ipv4Addr::new(203, 0, 113, 9), 80, host)
                .build()
        };
        let (a, b) = (mk("1"), (mk("2")));
        signature_from_cluster(id, &[&a, &b], &SignatureConfig::default()).unwrap()
    }

    #[test]
    fn detector_matches_and_identifies() {
        let s1 = sig_for("ad-maker.info", "imei", "355195000000017", 10);
        let s2 = sig_for("nend.net", "udid", "dd72cbaeab8d2e442d92e90c2e829e4b", 20);
        let det = Detector::new(SignatureSet {
            signatures: vec![s1, s2],
        });
        assert_eq!(det.signatures().len(), 2);

        let hit = RequestBuilder::get("/ad")
            .query("udid", "dd72cbaeab8d2e442d92e90c2e829e4b")
            .query("slot", "9")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "nend.net")
            .build();
        assert_eq!(det.match_packet(&hit), Some(Detection { signature_id: 20 }));
        assert_eq!(det.matches_all(&hit), vec![20]);

        let miss = RequestBuilder::get("/img/x.png")
            .destination(Ipv4Addr::new(198, 51, 100, 1), 80, "cdn.example")
            .build();
        assert_eq!(det.match_packet(&miss), None);
        assert!(det.matches_all(&miss).is_empty());
    }

    #[test]
    fn scan_produces_mask() {
        let s = sig_for("ad-maker.info", "imei", "355195000000017", 1);
        let det = Detector::new(SignatureSet {
            signatures: vec![s],
        });
        let hit = RequestBuilder::get("/ad")
            .query("imei", "355195000000017")
            .query("slot", "3")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
            .build();
        let miss = RequestBuilder::get("/other")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
            .build();
        let mask = det.scan([&hit, &miss, &hit]);
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn fraction_mode_tolerates_one_renamed_token() {
        // Build a signature spanning two fields (request line + cookie),
        // then probe with a packet missing exactly the cookie token (a
        // module revision dropped its session cookie).
        let mk = |slot: &str| {
            RequestBuilder::get("/ad")
                .query("imei", "355195000000017")
                .query("slot", slot)
                .cookie("sid=abcdef12345678")
                .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
                .build()
        };
        let (a, b) = (mk("1"), mk("2"));
        let sig = signature_from_cluster(5, &[&a, &b], &SignatureConfig::default()).unwrap();
        assert!(sig.tokens.len() >= 2, "need a multi-token signature");
        let set = SignatureSet {
            signatures: vec![sig],
        };
        // Same module, cookie dropped: the rline tokens still match.
        let revised = RequestBuilder::get("/ad")
            .query("imei", "355195000000017")
            .query("slot", "4")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
            .build();
        let strict = Detector::new(set.clone());
        let lenient = Detector::with_mode(set.clone(), MatchMode::Fraction(0.5));
        let exact = Detector::with_mode(set, MatchMode::Fraction(1.0));
        assert_eq!(
            strict.match_packet(&revised).is_some(),
            exact.match_packet(&revised).is_some()
        );
        assert!(
            lenient.match_packet(&revised).is_some(),
            "fractional match should fire"
        );
        // An unrelated packet stays unmatched even leniently.
        let unrelated = RequestBuilder::get("/api/list")
            .query("page", "2")
            .destination(Ipv4Addr::new(198, 51, 100, 7), 80, "api.example.jp")
            .build();
        assert!(lenient.match_packet(&unrelated).is_none());
    }

    #[test]
    fn ordered_mode_plugs_into_detector() {
        let sig = sig_for("nend.net", "aid", "f3a9c1d200b14e77", 2);
        let set = SignatureSet {
            signatures: vec![sig],
        };
        let det = Detector::with_mode(set, MatchMode::Ordered);
        let probe = RequestBuilder::get("/ad")
            .query("aid", "f3a9c1d200b14e77")
            .query("slot", "5")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "nend.net")
            .build();
        assert!(det.match_packet(&probe).is_some());
    }

    #[test]
    fn fraction_one_equals_conjunction() {
        let sig = sig_for("nend.net", "aid", "f3a9c1d200b14e77", 9);
        let set = SignatureSet {
            signatures: vec![sig],
        };
        let conj = Detector::new(set.clone());
        let frac = Detector::with_mode(set, MatchMode::Fraction(1.0));
        let probe = RequestBuilder::get("/ad")
            .query("aid", "f3a9c1d200b14e77")
            .query("slot", "2")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "nend.net")
            .build();
        assert_eq!(conj.match_packet(&probe), frac.match_packet(&probe));
    }

    #[test]
    #[should_panic(expected = "fraction threshold")]
    fn zero_fraction_rejected() {
        let _ = Detector::with_mode(SignatureSet::default(), MatchMode::Fraction(0.0));
    }

    #[test]
    fn explanations_carry_evidence() {
        let s = sig_for("ad-maker.info", "imei", "355195000000017", 3);
        let det = Detector::new(SignatureSet {
            signatures: vec![s],
        });
        let hit = RequestBuilder::get("/ad")
            .query("imei", "355195000000017")
            .query("slot", "1")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
            .build();
        let ex = det.explain(&hit).expect("explained");
        assert_eq!(ex.signature_id, 3);
        assert_eq!(ex.hosts, vec!["ad-maker.info".to_string()]);
        assert!(ex
            .matched_tokens
            .iter()
            .any(|t| t.contains("355195000000017")));
        let miss = RequestBuilder::get("/other")
            .destination(Ipv4Addr::LOCALHOST, 80, "x.jp")
            .build();
        assert!(det.explain(&miss).is_none());
    }

    #[test]
    fn empty_detector_matches_nothing() {
        let det = Detector::new(SignatureSet::default());
        let p = RequestBuilder::get("/")
            .destination(Ipv4Addr::LOCALHOST, 80, "x")
            .build();
        assert_eq!(det.match_packet(&p), None);
    }
}
