//! `leaksig-cli` — drive the leaksig pipeline from the command line.
//!
//! ```text
//! leaksig-cli market   --out capture.lsc --device device.txt [--seed 42] [--scale 0.05]
//! leaksig-cli check    --capture capture.lsc --device device.txt
//! leaksig-cli generate --capture capture.lsc --device device.txt --out sigs.txt [--n 300]
//! leaksig-cli detect   --capture capture.lsc --sigs sigs.txt [--device device.txt]
//! leaksig-cli inspect  --sigs sigs.txt
//! leaksig-cli lint     --sigs sigs.txt [--format text|json]
//! leaksig-cli analyze  --sigs sigs.txt [--mode conjunction] [--format text|json]
//! leaksig-cli analyze  --diff old.txt --new new.txt
//! leaksig-cli serve    --device device.txt [--bind 127.0.0.1:7341] [--batches 10]
//! leaksig-cli send     --addr 127.0.0.1:7341 --capture capture.lsc [--faults all]
//! ```
//!
//! The `market` command synthesizes a capture (stand-in for a real
//! capture loop); every other command works on capture/signature files
//! and would apply unchanged to real traffic dumps converted to the
//! `.lsc` format.

mod args;
mod capture;
mod commands;
mod devicefile;

use args::Args;

const USAGE: &str = "\
usage: leaksig-cli <command> [--flag value]...

commands:
  market    synthesize a market capture:  --out FILE --device FILE [--seed N] [--scale X]
  check     run the payload check:        --capture FILE --device FILE
  generate  generate signatures:          --capture FILE --device FILE --out FILE [--n N] [--seed N] [--gate on|off]
  detect    apply signatures:             --capture FILE --sigs FILE [--device FILE]
  gate      replay through the device gate: --capture FILE --sigs FILE [--policy allow|block]
  inspect   print a signature set:        --sigs FILE
  lint      audit a signature set:        --sigs FILE [--format text|json]  (exit 1 on errors)
  analyze   semantic set analysis:        --sigs FILE [--mode conjunction|ordered|fraction] [--threshold X]
                                          [--fp-threshold X] [--format text|json]  (exit 1 on proved findings)
            generation diff:              --diff OLD --new NEW [--mode ...]
  chaos     fault-injected sync replay:   [--seed N] [--faults drop,corrupt|all] [--intensity X] [--rounds N]
            raw-intake frontier:          [--ingest garbage,oversize,headerbomb,dupflood,slowdrip|all] [--deadline MS]  (exit 1 unless converged)
            socket frontier:              [--net chop,stall,reset,garbage,halfframe|all] [--scale X]  (loopback TCP soak, per-connection log)
  serve     run the TCP collection server: --device FILE [--bind ADDR] [--batches N] [--regen-every N] [--n N] [--sigs-out FILE]
  send      upload a capture over TCP:    --addr ADDR --capture FILE [--batch N] [--faults chop,...|all] [--intensity X] [--sync VER]
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print!("{USAGE}");
        return;
    }
    let exit = match run(argv) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprint!("{USAGE}");
            1
        }
    };
    std::process::exit(exit);
}

/// Run a subcommand. `Ok(code)` is the process exit status (non-zero for
/// commands like `lint` that report findings through it); `Err` is a
/// usage/runtime error that also prints the usage text.
fn run(argv: Vec<String>) -> Result<i32, String> {
    let args = Args::parse(argv).map_err(|e| e.to_string())?;
    match args.command.as_str() {
        "market" => commands::market(&args).map(|()| 0),
        "check" => commands::check(&args).map(|()| 0),
        "generate" => commands::generate(&args).map(|()| 0),
        "detect" => commands::detect(&args).map(|()| 0),
        "gate" => commands::gate(&args).map(|()| 0),
        "inspect" => commands::inspect(&args).map(|()| 0),
        "lint" => commands::lint(&args),
        "analyze" => commands::analyze(&args),
        "chaos" => commands::chaos(&args),
        "serve" => commands::serve(&args),
        "send" => commands::send(&args),
        other => Err(format!("unknown command {other:?}")),
    }
}
