//! The collection server of Fig. 3a as a long-running component.
//!
//! The paper's server "collects application traffic, clustering the data
//! and generating signatures". This module gives that loop a concrete
//! shape: packets are ingested continuously, the payload check routes
//! suspicious ones into a bounded reservoir, and `regenerate` runs the
//! §IV pipeline over the current reservoir and publishes the result to a
//! [`SignatureServer`] that devices sync from.
//!
//! Two intake paths exist. [`CollectionServer::ingest`] takes pre-parsed
//! packets and trusts them — the in-process path for tests and replay
//! tools. [`CollectionServer::ingest_raw`] is the hardened frontier for
//! raw network bytes: a per-source token bucket sheds floods before any
//! parsing work, [`leaksig_http::parse_request_limited`] enforces hard
//! resource limits, rejects land in a bounded reason-tagged quarantine
//! ledger, and admitted packets flow through a bounded queue with an
//! explicit [`Shed`] policy so overload degrades *recall* (some packets
//! lost) rather than latency or memory.
//!
//! The reservoir uses classic reservoir sampling so the retained sample
//! stays uniform over everything seen, no matter how long the server
//! runs — matching the paper's "select N HTTP packets at random out of
//! the suspicious group".

use crate::store::SignatureServer;
use leaksig_core::payload::PayloadCheck;
use leaksig_core::prelude::*;
use leaksig_http::{parse_request_limited, HttpPacket, ParseError, ParseLimits};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::net::Ipv4Addr;

/// Ingest/regeneration statistics.
///
/// Every counter is **monotonic over the server's lifetime**: nothing is
/// reset by regeneration, quarantine, or queue shedding, so deltas
/// between two [`CollectionServer::stats`] snapshots are meaningful.
/// See that method for the per-counter lifecycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Packets that entered classification (trusted `ingest` calls plus
    /// raw-intake packets drained from the admission queue).
    pub ingested: u64,
    /// Packets routed to the reservoir.
    pub suspicious: u64,
    /// Packets routed to the normal ring.
    pub normal: u64,
    /// Signature regenerations performed.
    pub regenerations: u64,
    /// Regenerations whose result the publisher's deploy gate refused.
    pub rejected_publishes: u64,
    /// Raw wire images offered to `ingest_raw` (admitted or not).
    pub raw_seen: u64,
    /// Raw images the limited parser refused.
    pub parse_rejects: u64,
    /// Total quarantine ledger admissions: parse rejects, supervisor
    /// poison verdicts, and poison re-ingests. Always ≥ `parse_rejects`.
    pub quarantined: u64,
    /// Raw images refused by the per-source token bucket.
    pub rate_limited: u64,
    /// Packets dropped by the shed policy (queue overflow) — the
    /// incoming packet or a queued victim, depending on [`Shed`].
    pub shed: u64,
    /// Raw images that parsed, passed admission, and were queued.
    pub admitted: u64,
}

/// What one [`CollectionServer::regenerate`] run produced.
///
/// Distinguishes "no suspicious traffic yet" from "the pipeline ran but
/// the deploy gate refused the result" — operationally opposite
/// conditions (wait vs. investigate) that the old `Option<u64>` return
/// collapsed into one. The supervised variants
/// ([`crate::RegenerationSupervisor`]) add two more terminal states for
/// runs the supervisor had to kill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegenerateOutcome {
    /// A gated set was published at this version.
    Published {
        /// Version the publisher assigned.
        version: u64,
        /// Signatures in the published set.
        signatures: usize,
    },
    /// The reservoir is empty; nothing to cluster yet.
    NoTraffic,
    /// The pipeline ran but the publisher's deploy gate refused the set
    /// (possible only under a loosened `PipelineConfig`); devices keep
    /// their current set.
    Rejected(Vec<Diagnostic>),
    /// The supervised run exceeded its deadline on every attempt and
    /// bisection could not pin the slowdown on a quarantinable subset;
    /// server state is untouched and devices keep their current set.
    TimedOut {
        /// The per-attempt deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// The supervised pipeline panicked on every attempt and bisection
    /// could not isolate the poison; the panic was contained — server
    /// state is untouched and devices keep their current set.
    Panicked {
        /// The panic payload, rendered.
        message: String,
    },
}

impl RegenerateOutcome {
    /// The published version, if any (compatibility shim for callers
    /// that only care about success).
    pub fn published(&self) -> Option<u64> {
        match self {
            RegenerateOutcome::Published { version, .. } => Some(*version),
            _ => None,
        }
    }
}

/// Which packet the admission queue sacrifices when it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// Drop the oldest queued packet and admit the newcomer (tail-drop
    /// inverted: freshest data wins).
    Oldest,
    /// Drop the incoming packet and keep the queue (oldest data wins).
    Newest,
    /// Shed suspicious packets *last*: evict the oldest queued benign
    /// packet first; when everything queued is suspicious, drop a benign
    /// newcomer, else the oldest suspicious entry. Floods then eat into
    /// the normal-ring sample (cheap) before they eat recall.
    SensitiveLast,
}

impl Shed {
    /// Stable lower-case label (CLI/event logs).
    pub fn label(self) -> &'static str {
        match self {
            Shed::Oldest => "oldest",
            Shed::Newest => "newest",
            Shed::SensitiveLast => "sensitive-last",
        }
    }
}

/// Per-source token-bucket parameters for raw intake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity: the burst a source may send instantaneously.
    pub burst: u32,
    /// Sustained refill rate in packets per 1000 logical milliseconds.
    pub per_second: u32,
}

/// Configuration of the hardened raw intake path.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Hard parse limits for untrusted bytes.
    pub limits: ParseLimits,
    /// Per-source admission rate; `None` admits everything (trusted
    /// deployments or benchmarks).
    pub rate: Option<RateLimit>,
    /// Admission queue bound (≥ 1; lower values shed sooner).
    pub queue_capacity: usize,
    /// Who the queue sacrifices when full.
    pub shed: Shed,
    /// Quarantine ledger bound: the ledger keeps the most recent this
    /// many records (the `quarantined` counter keeps the full total).
    pub quarantine_capacity: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            limits: ParseLimits::intake(),
            rate: None,
            queue_capacity: 4096,
            shed: Shed::SensitiveLast,
            quarantine_capacity: 256,
        }
    }
}

/// Why a wire image or packet sits in the quarantine ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The raw bytes failed the limited parse.
    Malformed(ParseError),
    /// The regeneration supervisor's bisection identified this packet as
    /// poisoning the pipeline (panic or deadline blowout).
    Poison,
    /// The packet matched an earlier poison verdict on arrival and was
    /// refused before reaching the reservoir again.
    PoisonReingest,
}

impl QuarantineReason {
    /// Stable lower-case reason tag (ledger rendering, event logs).
    pub fn tag(&self) -> &'static str {
        match self {
            QuarantineReason::Malformed(e) => e.tag(),
            QuarantineReason::Poison => "poison",
            QuarantineReason::PoisonReingest => "poison-reingest",
        }
    }
}

/// One quarantine ledger entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Why the input was quarantined.
    pub reason: QuarantineReason,
    /// Destination address the input was captured toward.
    pub source: Ipv4Addr,
    /// Destination port.
    pub port: u16,
    /// Size of the offending input in bytes (wire image for parse
    /// rejects, serialized size for poisoned packets).
    pub bytes: usize,
    /// Human-readable head of the input (lossy, truncated).
    pub summary: String,
}

/// Verdict of one [`CollectionServer::ingest_raw`] call for the
/// *incoming* wire image. Queue-overflow evictions of previously-queued
/// packets are reported through [`ServerStats::shed`], not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Parsed, admitted, and queued.
    Admitted {
        /// How the payload check classified it.
        suspicious: bool,
    },
    /// Refused by the per-source token bucket before parsing.
    RateLimited,
    /// Refused and recorded in the quarantine ledger.
    Quarantined(QuarantineReason),
    /// The queue was full and the shed policy sacrificed this packet.
    Shed,
}

/// The collection + generation server.
pub struct CollectionServer<T: Copy + Eq + Send> {
    check: PayloadCheck<T>,
    config: PipelineConfig,
    intake: IngestConfig,
    capacity: usize,
    state: Mutex<ServerState>,
}

struct TokenBucket {
    tokens_milli: u64,
    last_ms: u64,
}

struct ServerState {
    /// Uniform sample of suspicious packets seen so far.
    reservoir: Vec<HttpPacket>,
    /// Recent normal packets (ring) for signature validation.
    normal_ring: Vec<HttpPacket>,
    normal_pos: usize,
    /// Admission queue: parsed-and-classified packets awaiting the
    /// reservoir/ring stage, bounded by `IngestConfig::queue_capacity`.
    queue: VecDeque<(HttpPacket, bool)>,
    /// Per-source token buckets (keyed by capture destination address —
    /// the flow identity this model carries; a deployment keyed by
    /// uploader identity would swap the key only).
    buckets: HashMap<Ipv4Addr, TokenBucket>,
    /// Most recent quarantine records (bounded).
    ledger: VecDeque<QuarantineRecord>,
    /// Hashes of packets with a poison verdict: re-ingests are refused.
    poisoned: HashSet<u64>,
    /// Logical intake clock in milliseconds; `ingest_raw` advances it by
    /// one per call, `ingest_raw_at` pins it explicitly.
    clock_ms: u64,
    rng: StdRng,
    stats: ServerStats,
}

fn packet_key(p: &HttpPacket) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    p.hash(&mut h);
    h.finish()
}

/// Lossy, truncated head of a byte string for ledger summaries.
fn summarize(raw: &[u8]) -> String {
    let head = &raw[..raw.len().min(48)];
    let first_line = head.split(|&b| b == b'\n').next().unwrap_or(head);
    String::from_utf8_lossy(first_line).trim_end().to_string()
}

impl<T: Copy + Eq + Send> CollectionServer<T> {
    /// A server keeping at most `capacity` suspicious packets, using
    /// `check` for the §IV-A split, with the default [`IngestConfig`].
    pub fn new(check: PayloadCheck<T>, config: PipelineConfig, capacity: usize, seed: u64) -> Self {
        Self::with_intake(check, config, capacity, seed, IngestConfig::default())
    }

    /// [`CollectionServer::new`] with an explicit intake configuration.
    pub fn with_intake(
        check: PayloadCheck<T>,
        config: PipelineConfig,
        capacity: usize,
        seed: u64,
        intake: IngestConfig,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let intake = IngestConfig {
            queue_capacity: intake.queue_capacity.max(1),
            ..intake
        };
        CollectionServer {
            check,
            config,
            intake,
            capacity,
            state: Mutex::new(ServerState {
                reservoir: Vec::with_capacity(capacity),
                normal_ring: Vec::with_capacity(2048),
                normal_pos: 0,
                queue: VecDeque::new(),
                buckets: HashMap::new(),
                ledger: VecDeque::new(),
                poisoned: HashSet::new(),
                clock_ms: 0,
                rng: StdRng::seed_from_u64(seed),
                stats: ServerStats::default(),
            }),
        }
    }

    /// Ingest one captured packet; returns whether it was suspicious.
    ///
    /// This is the **trusted** in-process path: no limits, no admission
    /// control, no quarantine — the packet goes straight to
    /// classification. Raw network bytes must go through
    /// [`CollectionServer::ingest_raw`] instead.
    pub fn ingest(&self, packet: &HttpPacket) -> bool {
        let suspicious = self.check.is_suspicious(packet);
        let mut st = self.state.lock();
        st.classify(packet.clone(), suspicious, self.capacity);
        suspicious
    }

    /// Ingest raw request bytes captured toward `ip:port`, advancing the
    /// intake clock by one logical millisecond.
    ///
    /// The full admission path: per-source token bucket (cheapest, runs
    /// first), limited parse, poison filter, then the bounded queue with
    /// the configured shed policy. Use
    /// [`CollectionServer::ingest_raw_at`] to pin logical time
    /// explicitly (deterministic rate-limit tests, replaying timestamped
    /// captures).
    pub fn ingest_raw(&self, raw: &[u8], ip: Ipv4Addr, port: u16) -> IngestOutcome {
        let now = {
            let mut st = self.state.lock();
            st.clock_ms += 1;
            st.clock_ms
        };
        self.ingest_raw_at(raw, ip, port, now)
    }

    /// [`CollectionServer::ingest_raw`] at an explicit logical time in
    /// milliseconds. Time never runs backwards: a `now_ms` older than
    /// the clock is clamped forward.
    pub fn ingest_raw_at(&self, raw: &[u8], ip: Ipv4Addr, port: u16, now_ms: u64) -> IngestOutcome {
        // Admission gate (locked, cheap): count the offer and charge the
        // source's bucket before spending any parsing work on the bytes.
        {
            let mut st = self.state.lock();
            st.clock_ms = st.clock_ms.max(now_ms);
            let now = st.clock_ms;
            st.stats.raw_seen += 1;
            if let Some(rate) = self.intake.rate {
                if !st.charge_bucket(ip, now, rate) {
                    st.stats.rate_limited += 1;
                    return IngestOutcome::RateLimited;
                }
            }
        }

        // Parse + classify (unlocked: the expensive part must not stall
        // concurrent intake).
        let packet = match parse_request_limited(raw, ip, port, &self.intake.limits) {
            Ok(p) => p,
            Err(e) => {
                let reason = QuarantineReason::Malformed(e);
                let record = QuarantineRecord {
                    reason: reason.clone(),
                    source: ip,
                    port,
                    bytes: raw.len(),
                    summary: summarize(raw),
                };
                let mut st = self.state.lock();
                st.stats.parse_rejects += 1;
                st.quarantine(record, self.intake.quarantine_capacity);
                return IngestOutcome::Quarantined(reason);
            }
        };
        let suspicious = self.check.is_suspicious(&packet);

        // Enqueue (locked): poison filter, then the shed policy.
        let mut st = self.state.lock();
        if st.poisoned.contains(&packet_key(&packet)) {
            let record = QuarantineRecord {
                reason: QuarantineReason::PoisonReingest,
                source: ip,
                port,
                bytes: raw.len(),
                summary: summarize(raw),
            };
            st.quarantine(record, self.intake.quarantine_capacity);
            return IngestOutcome::Quarantined(QuarantineReason::PoisonReingest);
        }
        if st.queue.len() >= self.intake.queue_capacity {
            let shed_incoming = match self.intake.shed {
                Shed::Newest => true,
                Shed::Oldest => {
                    st.queue.pop_front();
                    false
                }
                Shed::SensitiveLast => {
                    if let Some(pos) = st.queue.iter().position(|(_, s)| !s) {
                        st.queue.remove(pos);
                        false
                    } else if !suspicious {
                        true
                    } else {
                        st.queue.pop_front();
                        false
                    }
                }
            };
            st.stats.shed += 1;
            if shed_incoming {
                return IngestOutcome::Shed;
            }
        }
        st.queue.push_back((packet, suspicious));
        st.stats.admitted += 1;
        IngestOutcome::Admitted { suspicious }
    }

    /// Drain up to `max` packets from the admission queue into the
    /// reservoir / normal ring. Returns how many were processed.
    /// [`CollectionServer::regenerate`] (and the supervisor) drain the
    /// whole queue before sampling, so calling this explicitly is only
    /// needed to smooth latency or to observe mid-flood state.
    pub fn pump(&self, max: usize) -> usize {
        let mut st = self.state.lock();
        let mut n = 0;
        while n < max {
            let Some((packet, suspicious)) = st.queue.pop_front() else {
                break;
            };
            st.classify(packet, suspicious, self.capacity);
            n += 1;
        }
        n
    }

    /// Drain the entire admission queue.
    pub fn pump_all(&self) -> usize {
        self.pump(usize::MAX)
    }

    /// Packets currently waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Snapshot of the most recent quarantine records (bounded by
    /// [`IngestConfig::quarantine_capacity`]; the total-ever count lives
    /// in [`ServerStats::quarantined`]).
    pub fn quarantine_ledger(&self) -> Vec<QuarantineRecord> {
        self.state.lock().ledger.iter().cloned().collect()
    }

    /// Quarantine specific packets: remove every reservoir entry equal
    /// to one of `packets`, record each under `reason`, and remember the
    /// verdict so re-ingests of the same packet are refused at
    /// admission. Used by the regeneration supervisor's bisection; also
    /// callable by an operator who identified a bad packet manually.
    pub fn quarantine_packets(&self, packets: &[HttpPacket], reason: QuarantineReason) {
        let mut st = self.state.lock();
        for p in packets {
            st.poisoned.insert(packet_key(p));
            st.reservoir.retain(|r| r != p);
            let record = QuarantineRecord {
                reason: reason.clone(),
                source: p.destination.ip,
                port: p.destination.port,
                bytes: p.wire_len(),
                summary: p.request_line.as_line().chars().take(48).collect(),
            };
            st.quarantine(record, self.intake.quarantine_capacity);
        }
    }

    /// Pipeline configuration (for the regeneration supervisor).
    pub(crate) fn pipeline_config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Phase 1 of a regeneration: drain the admission queue, then — under
    /// the lock — sample `n` reservoir packets (uniform; prefix of a
    /// shuffle for sub-sampling determinism) and clone out the normal
    /// slice the pipeline needs. `None` when the reservoir is empty.
    pub(crate) fn sample_for_regenerate(&self, n: usize) -> Option<(Vec<HttpPacket>, Vec<HttpPacket>)> {
        self.pump_all();
        let mut st = self.state.lock();
        if st.reservoir.is_empty() {
            return None;
        }
        let mut idx: Vec<usize> = (0..st.reservoir.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = st.rng.random_range(0..=i as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(n);
        let sample: Vec<HttpPacket> = idx.iter().map(|&i| st.reservoir[i].clone()).collect();
        let normal: Vec<HttpPacket> = match self.config.fp_validation {
            Some(v) => st.normal_ring.iter().take(v.sample).cloned().collect(),
            None => Vec::new(),
        };
        Some((sample, normal))
    }

    /// Phase 3 of a regeneration: account for a finished pipeline run.
    pub(crate) fn account_publish(
        &self,
        publish: Result<u64, Vec<Diagnostic>>,
        signatures: usize,
    ) -> RegenerateOutcome {
        let mut st = self.state.lock();
        st.stats.regenerations += 1;
        match publish {
            Ok(version) => RegenerateOutcome::Published {
                version,
                signatures,
            },
            Err(diags) => {
                st.stats.rejected_publishes += 1;
                RegenerateOutcome::Rejected(diags)
            }
        }
    }

    /// Run the §IV pipeline over (up to) `n` reservoir packets, validate
    /// against the normal ring, and publish to `server`.
    ///
    /// The state mutex is held only while *sampling* (cloning the chosen
    /// packets out) and while bumping counters afterwards; the expensive
    /// §IV run — clustering, signature generation, FP pruning — happens
    /// outside the lock, so `ingest` keeps flowing during regeneration.
    ///
    /// This inline variant has **no deadline and no panic isolation**;
    /// production loops should prefer
    /// [`crate::RegenerationSupervisor::regenerate`], which wraps the
    /// same three phases in a supervised worker.
    pub fn regenerate(&self, n: usize, server: &SignatureServer) -> RegenerateOutcome {
        let Some((sample, normal)) = self.sample_for_regenerate(n) else {
            return RegenerateOutcome::NoTraffic;
        };
        let sample_refs: Vec<&HttpPacket> = sample.iter().collect();
        let normal_refs: Vec<&HttpPacket> = normal.iter().collect();
        let set = regeneration_pass(&sample_refs, &normal_refs, &self.config);
        self.account_publish(server.publish(&set), set.len())
    }

    /// Counter snapshot.
    ///
    /// Counter lifecycle: all counters start at zero, only ever
    /// increase, and survive regenerations. `raw_seen` bumps on every
    /// `ingest_raw` offer; exactly one of `rate_limited`,
    /// `parse_rejects` (+`quarantined`), `shed`, or `admitted` bumps for
    /// that same offer — except under [`Shed::Oldest`] /
    /// [`Shed::SensitiveLast`], where an overflow bumps `shed` for a
    /// *queued victim* while the incoming packet still bumps `admitted`.
    /// `ingested`/`suspicious`/`normal` bump when a packet enters
    /// classification: immediately for trusted [`CollectionServer::ingest`],
    /// at queue-drain time (`pump`/`regenerate`) for raw intake.
    /// `quarantined` also bumps for supervisor poison verdicts, which do
    /// not originate from an `ingest_raw` offer.
    pub fn stats(&self) -> ServerStats {
        self.state.lock().stats
    }

    /// Current reservoir size.
    pub fn reservoir_len(&self) -> usize {
        self.state.lock().reservoir.len()
    }
}

impl ServerState {
    /// Route one classified packet into the reservoir or normal ring.
    fn classify(&mut self, packet: HttpPacket, suspicious: bool, capacity: usize) {
        self.stats.ingested += 1;
        if suspicious {
            self.stats.suspicious += 1;
            // Reservoir sampling: keep each suspicious packet with
            // probability capacity / seen-so-far.
            if self.reservoir.len() < capacity {
                self.reservoir.push(packet);
            } else {
                let seen = self.stats.suspicious;
                let j = self.rng.random_range(0..seen);
                if (j as usize) < capacity {
                    let slot = j as usize;
                    self.reservoir[slot] = packet;
                }
            }
        } else {
            self.stats.normal += 1;
            // Bounded ring of recent normal traffic for FP validation.
            if self.normal_ring.len() < 2048 {
                self.normal_ring.push(packet);
            } else {
                let pos = self.normal_pos;
                self.normal_ring[pos] = packet;
                self.normal_pos = (pos + 1) % 2048;
            }
        }
    }

    /// Take one token from `ip`'s bucket at logical time `now`; returns
    /// whether the packet is admitted. Buckets refill at
    /// `rate.per_second` per 1000 logical ms up to `rate.burst`. The
    /// bucket map is bounded: when a flood of distinct sources would
    /// grow it past 8192 entries, the map resets (a crude sliding
    /// window — sources restart with a full burst, which errs toward
    /// admitting).
    fn charge_bucket(&mut self, ip: Ipv4Addr, now: u64, rate: RateLimit) -> bool {
        const MILLI: u64 = 1000;
        if self.buckets.len() >= 8192 && !self.buckets.contains_key(&ip) {
            self.buckets.clear();
        }
        let bucket = self.buckets.entry(ip).or_insert(TokenBucket {
            tokens_milli: rate.burst as u64 * MILLI,
            last_ms: now,
        });
        let elapsed = now.saturating_sub(bucket.last_ms);
        bucket.last_ms = now;
        // per_second tokens / 1000 ms == per_second milli-tokens per ms.
        bucket.tokens_milli = (bucket.tokens_milli + elapsed * rate.per_second as u64)
            .min(rate.burst as u64 * MILLI);
        if bucket.tokens_milli >= MILLI {
            bucket.tokens_milli -= MILLI;
            true
        } else {
            false
        }
    }

    /// Append a ledger record, evicting the oldest past `capacity`.
    fn quarantine(&mut self, record: QuarantineRecord, capacity: usize) {
        self.stats.quarantined += 1;
        self.ledger.push_back(record);
        while self.ledger.len() > capacity.max(1) {
            self.ledger.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SignatureStore;
    use leaksig_http::RequestBuilder;
    use std::net::Ipv4Addr;

    fn leak(i: usize) -> HttpPacket {
        RequestBuilder::get("/getad")
            .query("imei", "355195000000017")
            .query("slot", &(i % 9).to_string())
            .destination(Ipv4Addr::new(203, 0, 113, 3), 80, "ad-maker.info")
            .build()
    }

    fn clean(i: usize) -> HttpPacket {
        RequestBuilder::get("/img")
            .query("f", &format!("{i:06x}.png"))
            .destination(Ipv4Addr::new(198, 51, 100, 8), 80, "cdn.example.jp")
            .build()
    }

    fn server() -> CollectionServer<&'static str> {
        CollectionServer::new(
            PayloadCheck::new([("imei", "355195000000017")]),
            PipelineConfig::default(),
            64,
            7,
        )
    }

    fn raw_of(p: &HttpPacket) -> (Vec<u8>, Ipv4Addr, u16) {
        (p.to_bytes(), p.destination.ip, p.destination.port)
    }

    #[test]
    fn ingest_routes_and_counts() {
        let srv = server();
        for i in 0..30 {
            assert!(srv.ingest(&leak(i)));
            assert!(!srv.ingest(&clean(i)));
        }
        let stats = srv.stats();
        assert_eq!(stats.ingested, 60);
        assert_eq!(stats.suspicious, 30);
        assert_eq!(stats.normal, 30);
        assert_eq!(srv.reservoir_len(), 30);
    }

    #[test]
    fn reservoir_stays_bounded() {
        let srv = server();
        for i in 0..500 {
            srv.ingest(&leak(i));
        }
        assert_eq!(srv.reservoir_len(), 64);
        assert_eq!(srv.stats().suspicious, 500);
    }

    #[test]
    fn ingest_raw_parses_queues_and_pumps() {
        let srv = server();
        let (raw, ip, port) = raw_of(&leak(1));
        assert_eq!(
            srv.ingest_raw(&raw, ip, port),
            IngestOutcome::Admitted { suspicious: true }
        );
        let (raw, ip, port) = raw_of(&clean(1));
        assert_eq!(
            srv.ingest_raw(&raw, ip, port),
            IngestOutcome::Admitted { suspicious: false }
        );
        assert_eq!(srv.queue_len(), 2);
        assert_eq!(srv.stats().ingested, 0, "not classified until pumped");
        assert_eq!(srv.pump_all(), 2);
        assert_eq!(srv.queue_len(), 0);
        let stats = srv.stats();
        assert_eq!((stats.ingested, stats.suspicious, stats.normal), (2, 1, 1));
        assert_eq!((stats.raw_seen, stats.admitted), (2, 2));
        assert_eq!(srv.reservoir_len(), 1);
    }

    #[test]
    fn ingest_raw_quarantines_malformed_with_tagged_reason() {
        let srv = server();
        let out = srv.ingest_raw(b"\x00\x01garbage without structure", Ipv4Addr::LOCALHOST, 80);
        let IngestOutcome::Quarantined(reason) = out else {
            panic!("garbage must be quarantined, got {out:?}");
        };
        assert!(matches!(reason, QuarantineReason::Malformed(_)));

        // A header bomb is rejected with its own tag, bounded work.
        let mut bomb = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..1000 {
            bomb.extend_from_slice(format!("x-{i}: v\r\n").as_bytes());
        }
        bomb.extend_from_slice(b"\r\n");
        let out = srv.ingest_raw(&bomb, Ipv4Addr::LOCALHOST, 80);
        let IngestOutcome::Quarantined(reason) = out else {
            panic!("bomb must be quarantined, got {out:?}");
        };
        assert_eq!(reason.tag(), "header-bomb");

        let stats = srv.stats();
        assert_eq!(stats.parse_rejects, 2);
        assert_eq!(stats.quarantined, 2);
        assert_eq!(stats.admitted, 0);
        let ledger = srv.quarantine_ledger();
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger[1].reason.tag(), "header-bomb");
        assert!(ledger[1].summary.starts_with("GET / HTTP/1.1"));
        assert_eq!(srv.queue_len(), 0, "rejects never reach the queue");
    }

    #[test]
    fn quarantine_ledger_is_bounded() {
        let srv = CollectionServer::with_intake(
            PayloadCheck::new([("imei", "355195000000017")]),
            PipelineConfig::default(),
            8,
            7,
            IngestConfig {
                quarantine_capacity: 4,
                ..IngestConfig::default()
            },
        );
        for i in 0..20 {
            srv.ingest_raw(format!("junk-{i}").as_bytes(), Ipv4Addr::LOCALHOST, 80);
        }
        assert_eq!(srv.stats().quarantined, 20, "counter keeps the total");
        let ledger = srv.quarantine_ledger();
        assert_eq!(ledger.len(), 4, "ledger keeps the most recent");
        assert_eq!(ledger[3].summary, "junk-19");
    }

    #[test]
    fn token_bucket_sheds_floods_then_refills() {
        let srv = CollectionServer::with_intake(
            PayloadCheck::new([("imei", "355195000000017")]),
            PipelineConfig::default(),
            8,
            7,
            IngestConfig {
                rate: Some(RateLimit {
                    burst: 3,
                    per_second: 1000,
                }),
                ..IngestConfig::default()
            },
        );
        let (raw, ip, port) = raw_of(&clean(0));
        // Burst of 5 at the same instant: 3 admitted, 2 rate-limited.
        for i in 0..5 {
            let out = srv.ingest_raw_at(&raw, ip, port, 10);
            if i < 3 {
                assert_eq!(out, IngestOutcome::Admitted { suspicious: false });
            } else {
                assert_eq!(out, IngestOutcome::RateLimited);
            }
        }
        // A different source is unaffected.
        let (raw2, ip2, port2) = raw_of(&leak(0));
        assert_eq!(
            srv.ingest_raw_at(&raw2, ip2, port2, 10),
            IngestOutcome::Admitted { suspicious: true }
        );
        // One logical second later the first source has refilled.
        assert_eq!(
            srv.ingest_raw_at(&raw, ip, port, 1010),
            IngestOutcome::Admitted { suspicious: false }
        );
        assert_eq!(srv.stats().rate_limited, 2);
    }

    #[test]
    fn shed_policies_pick_the_right_victim() {
        let mk = |shed| {
            CollectionServer::with_intake(
                PayloadCheck::new([("imei", "355195000000017")]),
                PipelineConfig::default(),
                8,
                7,
                IngestConfig {
                    queue_capacity: 2,
                    shed,
                    ..IngestConfig::default()
                },
            )
        };

        // Newest: the incoming packet is sacrificed.
        let srv = mk(Shed::Newest);
        let (a, ip, port) = raw_of(&leak(0));
        srv.ingest_raw(&a, ip, port);
        srv.ingest_raw(&a, ip, port);
        assert_eq!(srv.ingest_raw(&a, ip, port), IngestOutcome::Shed);
        assert_eq!(srv.queue_len(), 2);
        assert_eq!(srv.stats().shed, 1);

        // Oldest: the queue front is sacrificed, the newcomer admitted.
        let srv = mk(Shed::Oldest);
        srv.ingest_raw(&a, ip, port);
        srv.ingest_raw(&a, ip, port);
        assert_eq!(
            srv.ingest_raw(&a, ip, port),
            IngestOutcome::Admitted { suspicious: true }
        );
        assert_eq!(srv.queue_len(), 2);
        assert_eq!(srv.stats().shed, 1);

        // SensitiveLast: benign queue entries are evicted before any
        // suspicious one; a benign newcomer into an all-suspicious queue
        // is itself shed.
        let srv = mk(Shed::SensitiveLast);
        let (benign, bip, bport) = raw_of(&clean(0));
        srv.ingest_raw(&benign, bip, bport);
        srv.ingest_raw(&a, ip, port);
        assert_eq!(
            srv.ingest_raw(&a, ip, port),
            IngestOutcome::Admitted { suspicious: true },
            "evicts the queued benign packet"
        );
        srv.pump_all();
        let stats = srv.stats();
        assert_eq!(stats.suspicious, 2, "both suspicious packets survived");
        assert_eq!(stats.normal, 0, "the benign packet was the victim");
        srv.ingest_raw(&a, ip, port);
        srv.ingest_raw(&a, ip, port);
        assert_eq!(
            srv.ingest_raw(&benign, bip, bport),
            IngestOutcome::Shed,
            "benign newcomer loses to an all-suspicious queue"
        );
    }

    #[test]
    fn quarantined_packets_leave_reservoir_and_stay_out() {
        let srv = server();
        for i in 0..10 {
            srv.ingest(&leak(i));
        }
        assert_eq!(srv.reservoir_len(), 10);
        let poison = leak(3);
        srv.quarantine_packets(std::slice::from_ref(&poison), QuarantineReason::Poison);
        assert_eq!(srv.reservoir_len(), 9);
        let ledger = srv.quarantine_ledger();
        assert_eq!(ledger.last().unwrap().reason, QuarantineReason::Poison);
        assert_eq!(srv.stats().quarantined, 1);

        // Re-ingesting the same packet through the raw path is refused.
        let (raw, ip, port) = raw_of(&poison);
        assert_eq!(
            srv.ingest_raw(&raw, ip, port),
            IngestOutcome::Quarantined(QuarantineReason::PoisonReingest)
        );
        assert_eq!(srv.reservoir_len(), 9);
        assert_eq!(srv.stats().quarantined, 2);
    }

    #[test]
    fn regenerate_publishes_working_signatures() {
        let srv = server();
        let publisher = SignatureServer::new();
        assert_eq!(
            srv.regenerate(20, &publisher),
            RegenerateOutcome::NoTraffic,
            "nothing ingested yet"
        );
        assert_eq!(srv.stats().regenerations, 0, "no-traffic runs don't count");

        for i in 0..100 {
            srv.ingest(&leak(i));
            srv.ingest(&clean(i));
        }
        let outcome = srv.regenerate(20, &publisher);
        let RegenerateOutcome::Published {
            version,
            signatures,
        } = outcome
        else {
            panic!("expected publish, got {outcome:?}");
        };
        assert_eq!(version, 1);
        assert!(signatures >= 1);
        assert_eq!(srv.stats().regenerations, 1);
        assert_eq!(srv.stats().rejected_publishes, 0);

        // A device syncs and detects fresh module traffic.
        let store = SignatureStore::new();
        assert!(store.sync(&publisher).unwrap());
        assert!(store.match_packet(&leak(999)).is_some());
        assert!(store.match_packet(&clean(999)).is_none());

        // Second regeneration bumps the version.
        assert_eq!(srv.regenerate(20, &publisher).published(), Some(2));
    }

    #[test]
    fn regenerate_drains_the_intake_queue_first() {
        let srv = server();
        for i in 0..40 {
            let (raw, ip, port) = raw_of(&leak(i));
            srv.ingest_raw(&raw, ip, port);
        }
        assert_eq!(srv.queue_len(), 40);
        let publisher = SignatureServer::new();
        assert!(srv.regenerate(20, &publisher).published().is_some());
        assert_eq!(srv.queue_len(), 0);
        assert_eq!(srv.stats().ingested, 40);
    }

    #[test]
    fn gate_rejection_is_visible_not_swallowed() {
        // A deliberately loosened pipeline (tiny anchor requirement, no
        // pipeline-side gate) over traffic leaking a *short* identifier:
        // every substring the cluster shares is under the default
        // 10-byte anchor, so the generated signature is a §VI hazard the
        // publisher's deploy gate must refuse — visibly, not as a
        // silent `None`.
        let mut config = PipelineConfig::default();
        config.signature.min_anchor_len = 5;
        config.signature.include_singletons = false;
        config.deploy_gate = false;
        config.fp_validation = None;
        let srv = CollectionServer::new(PayloadCheck::new([("k", "short12")]), config, 8, 7);
        let weak = |path: &str, q: &str, v: &str, val: &str| {
            RequestBuilder::get(path)
                .query(q, "short12")
                .query(v, val)
                .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "weak.example")
                .build()
        };
        assert!(srv.ingest(&weak("/aa", "ak", "x", "0001")));
        assert!(srv.ingest(&weak("/bb", "bz", "y", "0202")));

        let publisher = SignatureServer::new();
        let outcome = srv.regenerate(8, &publisher);
        let RegenerateOutcome::Rejected(diags) = &outcome else {
            panic!("expected a deploy-gate rejection, got {outcome:?}");
        };
        assert!(!diags.is_empty());
        assert_eq!(outcome.published(), None);
        assert_eq!(publisher.version(), 0, "nothing was published");
        let stats = srv.stats();
        assert_eq!(stats.regenerations, 1, "the run itself is counted");
        assert_eq!(stats.rejected_publishes, 1, "...and so is the rejection");
    }

    #[test]
    fn ingest_proceeds_while_regenerating() {
        // Load enough traffic that the §IV pipeline takes measurable
        // time, then race ingest against regenerate. With the sample
        // cloned out under the lock, ingest must never wait for the
        // pipeline; we assert completion (no deadlock) and that both
        // sides observed a consistent final state.
        let srv = std::sync::Arc::new(server());
        for i in 0..200 {
            srv.ingest(&leak(i));
            srv.ingest(&clean(i));
        }
        let publisher = SignatureServer::new();
        let srv2 = srv.clone();
        std::thread::scope(|scope| {
            let regen = scope.spawn(|| srv.regenerate(60, &publisher).published());
            let ingest = scope.spawn(move || {
                for i in 0..200 {
                    srv2.ingest(&leak(1000 + i));
                }
            });
            assert_eq!(regen.join().unwrap(), Some(1));
            ingest.join().unwrap();
        });
        let stats = srv.stats();
        assert_eq!(stats.ingested, 600);
        assert_eq!(stats.suspicious, 400);
        assert_eq!(stats.regenerations, 1);
    }
}
