//! Tiny regex-driven string *generator* (not a matcher).
//!
//! Supports the pattern subset the workspace's property tests use:
//! literal characters, character classes (`[a-z0-9.-]`, ranges and
//! literals, `-` literal when first or last), groups `(...)`,
//! quantifiers `{n}`, `{n,m}`, `?`, `*`, `+`, top-level and grouped
//! alternation `a|b`, and `\` escapes. Unbounded quantifiers (`*`, `+`,
//! `{n,}`) are capped at 8 repetitions.

use crate::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Box<Node>),
    Concat(Vec<Node>),
    Alternate(Vec<Node>),
    Repeat { node: Box<Node>, min: u32, max: u32 },
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!(
            "unsupported regex {:?} at position {}: {}",
            self.pattern, self.pos, what
        );
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, expected: char) {
        match self.bump() {
            Some(c) if c == expected => {}
            _ => self.fail(&format!("expected {expected:?}")),
        }
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternation(&mut self) -> Node {
        let mut arms = vec![self.parse_concat()];
        while self.peek() == Some('|') {
            self.bump();
            arms.push(self.parse_concat());
        }
        if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Node::Alternate(arms)
        }
    }

    /// concat := (atom quantifier?)*
    fn parse_concat(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == ')' || c == '|' {
                break;
            }
            let atom = self.parse_atom();
            items.push(self.parse_quantifier(atom));
        }
        if items.len() == 1 {
            items.pop().unwrap()
        } else {
            Node::Concat(items)
        }
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump() {
            Some('[') => self.parse_class(),
            Some('(') => {
                let inner = self.parse_alternation();
                self.eat(')');
                Node::Group(Box::new(inner))
            }
            Some('\\') => match self.bump() {
                Some(c) => Node::Literal(c),
                None => self.fail("dangling escape"),
            },
            Some(c @ ('*' | '+' | '?' | '{')) => {
                self.fail(&format!("quantifier {c:?} with nothing to repeat"))
            }
            Some('.') => Node::Class(vec![(' ', '~')]), // any printable ASCII
            Some(c) => Node::Literal(c),
            None => self.fail("unexpected end of pattern"),
        }
    }

    /// class := '[' entries ']' — already past the '['.
    fn parse_class(&mut self) -> Node {
        let mut ranges: Vec<(char, char)> = Vec::new();
        loop {
            let c = match self.bump() {
                Some(']') if !ranges.is_empty() => break,
                Some('\\') => self.bump().unwrap_or_else(|| self.fail("dangling escape")),
                Some(c) => c,
                None => self.fail("unterminated character class"),
            };
            // Range `a-z` unless the '-' is the final char of the class.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some('\\') => self.bump().unwrap_or_else(|| self.fail("dangling escape")),
                    Some(hi) => hi,
                    None => self.fail("unterminated range"),
                };
                if hi < c {
                    self.fail(&format!("inverted range {c}-{hi}"));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        let (min, max) = match self.peek() {
            Some('?') => {
                self.bump();
                (0, 1)
            }
            Some('*') => {
                self.bump();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.bump();
                (1, UNBOUNDED_CAP)
            }
            Some('{') => {
                self.bump();
                let min = self.parse_number();
                let max = match self.peek() {
                    Some(',') => {
                        self.bump();
                        if self.peek() == Some('}') {
                            min.saturating_add(UNBOUNDED_CAP)
                        } else {
                            self.parse_number()
                        }
                    }
                    _ => min,
                };
                self.eat('}');
                if max < min {
                    self.fail(&format!("quantifier {{{min},{max}}} is inverted"));
                }
                (min, max)
            }
            _ => return atom,
        };
        Node::Repeat {
            node: Box::new(atom),
            min,
            max,
        }
    }

    fn parse_number(&mut self) -> u32 {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            self.fail("expected number in quantifier");
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| self.fail("quantifier bound too large"))
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            // Weight choices by range width for uniformity over chars.
            let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
            let mut pick = rng.below(total as usize) as u32;
            for (lo, hi) in ranges {
                let width = *hi as u32 - *lo as u32 + 1;
                if pick < width {
                    out.push(char::from_u32(*lo as u32 + pick).expect("class range char"));
                    return;
                }
                pick -= width;
            }
            unreachable!("class pick out of bounds");
        }
        Node::Group(inner) => emit(inner, rng, out),
        Node::Concat(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Node::Alternate(arms) => {
            let i = rng.below(arms.len());
            emit(&arms[i], rng, out);
        }
        Node::Repeat { node, min, max } => {
            let n = if min == max {
                *min
            } else {
                min + rng.below((*max - *min + 1) as usize) as u32
            };
            for _ in 0..n {
                emit(node, rng, out);
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let ast = parser.parse_alternation();
    if parser.pos != parser.chars.len() {
        parser.fail("trailing characters");
    }
    let mut out = String::new();
    emit(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("regex_gen")
    }

    #[test]
    fn classes_and_counts() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z0-9.-]{1,24}", &mut r);
            assert!((1..=24).contains(&s.len()), "{s:?}");
            assert!(s
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'-'));
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[ -~]{0,40}", &mut r);
            assert!(s.len() <= 40);
            assert!(s.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        }
    }

    #[test]
    fn optional_group() {
        let mut r = rng();
        let mut seen_short = false;
        let mut seen_long = false;
        for _ in 0..300 {
            let s = generate("[a-z]([a-z ]{0,3}[a-z])?", &mut r);
            assert!(!s.is_empty() && s.len() <= 5, "{s:?}");
            if s.len() == 1 {
                seen_short = true;
            } else {
                seen_long = true;
                assert!(!s.ends_with(' '));
            }
        }
        assert!(seen_short && seen_long);
    }

    #[test]
    fn alternation_and_escape() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("(foo|ba\\|r)", &mut r);
            assert!(s == "foo" || s == "ba|r", "{s:?}");
        }
    }

    #[test]
    fn exact_count_and_literals() {
        let mut r = rng();
        let s = generate("[0-9]{15}", &mut r);
        assert_eq!(s.len(), 15);
        assert_eq!(generate("abc", &mut r), "abc");
    }

    #[test]
    fn unbounded_quantifiers_capped() {
        let mut r = rng();
        for _ in 0..100 {
            assert!(generate("a*", &mut r).len() <= 8);
            let p = generate("b+", &mut r);
            assert!(!p.is_empty() && p.len() <= 8);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unterminated_class_panics() {
        generate("[a-z", &mut rng());
    }
}
