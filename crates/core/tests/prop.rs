//! Property tests for core invariants.

use leaksig_core::prelude::*;
use leaksig_core::signature::{ConjunctionSignature, Field, FieldToken};
use leaksig_http::RequestBuilder;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_packet() -> impl Strategy<Value = leaksig_http::HttpPacket> {
    (
        "[a-z0-9.-]{1,24}",
        any::<u32>(),
        1u16..,
        "[a-z/]{1,12}",
        proptest::collection::vec(("[a-z]{1,8}", "[a-zA-Z0-9]{0,16}"), 0..6),
        proptest::option::of("[a-z0-9=;]{1,24}"),
    )
        .prop_map(|(host, ip, port, path, qs, cookie)| {
            let mut b = RequestBuilder::get(&format!("/{path}"));
            for (k, v) in &qs {
                b = b.query(k, v);
            }
            if let Some(c) = &cookie {
                b = b.cookie(c);
            }
            b.destination(Ipv4Addr::from(ip), port, &host).build()
        })
}

fn arb_token() -> impl Strategy<Value = FieldToken> {
    (
        prop_oneof![
            Just(Field::RequestLine),
            Just(Field::Cookie),
            Just(Field::Body),
        ],
        // Arbitrary bytes, non-empty and far below the 256-byte Needle
        // cap — both limits the wire decoder enforces.
        proptest::collection::vec(any::<u8>(), 1..24),
        any::<u32>(),
    )
        .prop_map(|(field, bytes, hint)| FieldToken::with_hint(field, bytes, hint))
}

/// Signature sets the generator would never emit (arbitrary ids, hint
/// values, byte patterns) — the wire format must carry them regardless.
fn arb_wire_set() -> impl Strategy<Value = SignatureSet> {
    proptest::collection::vec(
        (
            any::<u32>(),
            1usize..50,
            proptest::collection::vec("[a-z0-9.-]{1,16}", 0..3),
            proptest::collection::vec(arb_token(), 1..5),
        ),
        0..6,
    )
    .prop_map(|sigs| SignatureSet {
        signatures: sigs
            .into_iter()
            .map(|(id, cluster_size, hosts, tokens)| ConjunctionSignature {
                id,
                tokens,
                cluster_size,
                hosts,
            })
            .collect(),
    })
}

/// Packets over a tiny alphabet so engine/naive differential tests see
/// real matches (and near-misses) instead of a wall of trivial rejects.
fn arb_collision_packet() -> impl Strategy<Value = leaksig_http::HttpPacket> {
    (
        "[ab]{0,12}",
        proptest::option::of("[ab]{1,12}"),
        proptest::option::of("[ab]{0,16}"),
    )
        .prop_map(|(path, cookie, body)| {
            let mut b = RequestBuilder::get(&format!("/{path}"));
            if let Some(c) = &cookie {
                b = b.cookie(c);
            }
            if let Some(body) = body {
                b = b.body(body.into_bytes());
            }
            b.destination(Ipv4Addr::new(203, 0, 113, 9), 80, "a.example")
                .build()
        })
}

/// Signature sets whose tokens share the same tiny alphabet: heavy
/// cross-signature token overlap, duplicate tokens inside one signature,
/// and arbitrary order hints — the hard cases for a shared automaton.
fn arb_collision_set() -> impl Strategy<Value = SignatureSet> {
    let token = (
        prop_oneof![
            Just(Field::RequestLine),
            Just(Field::Cookie),
            Just(Field::Body),
        ],
        "[ab]{1,4}",
        0u32..8,
    )
        .prop_map(|(field, bytes, hint)| FieldToken::with_hint(field, bytes.into_bytes(), hint));
    proptest::collection::vec(proptest::collection::vec(token, 1..6), 0..8).prop_map(|sigs| {
        SignatureSet {
            signatures: sigs
                .into_iter()
                .enumerate()
                .map(|(id, tokens)| ConjunctionSignature {
                    id: id as u32,
                    tokens,
                    cluster_size: 2,
                    hosts: Vec::new(),
                })
                .collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packet distance under the corrected convention is a bounded,
    /// symmetric-ish, near-zero-on-identity quantity.
    #[test]
    fn corrected_distance_properties(a in arb_packet(), b in arb_packet()) {
        let d: PacketDistance = PacketDistance::default();
        let (fa, fb) = (d.features(&a), d.features(&b));
        let dab = d.packet(&fa, &fb);
        prop_assert!(dab >= 0.0);
        prop_assert!(dab <= 6.5, "d = {}", dab); // 3 dst + 3 content + NCD slack
        let dba = d.packet(&fb, &fa);
        prop_assert!((dab - dba).abs() < 0.35, "asymmetry {} vs {}", dab, dba);
        let self_dist = d.packet(&fa, &fa);
        prop_assert!(self_dist < 1.0, "self distance {}", self_dist);
    }

    /// Dendrogram cuts always produce a partition of the leaves.
    #[test]
    fn cuts_partition(packets in proptest::collection::vec(arb_packet(), 2..16),
                      threshold in 0.0f64..6.0) {
        let d: PacketDistance = PacketDistance::default();
        let feats: Vec<_> = packets.iter().map(|p| d.features(p)).collect();
        let dg = agglomerate(&pairwise(&d, &feats));
        let clusters = dg.cut(threshold);
        let mut all: Vec<usize> = clusters.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..packets.len()).collect();
        prop_assert_eq!(all, expect);
    }

    /// NN-chain clustering is a drop-in replacement for the legacy greedy
    /// algorithm: on random metric (point-derived, effectively tie-free)
    /// matrices, every linkage produces the same replayed merge sequence —
    /// identical `(a, b, size)` structure, distances equal up to the ulp
    /// drift group-average Lance–Williams accumulates under different
    /// merge interleavings — and identical `cut` / `cut_into` partitions.
    #[test]
    fn nn_chain_matches_legacy_on_random_metric_matrices(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..24),
    ) {
        let n = points.len();
        let mut m = CondensedMatrix::zeros(n);
        for i in 0..n {
            for j in i + 1..n {
                let (dx, dy) = (points[i].0 - points[j].0, points[i].1 - points[j].1);
                m.set(i, j, (dx * dx + dy * dy).sqrt());
            }
        }
        for linkage in [Linkage::GroupAverage, Linkage::Single, Linkage::Complete] {
            let fast = agglomerate_with(&m, linkage);
            let legacy = agglomerate_legacy_with(&m, linkage);
            prop_assert_eq!(fast.merges().len(), legacy.merges().len());
            let mut thresholds = vec![0.0f64];
            for (f, l) in fast.merges().iter().zip(legacy.merges()) {
                prop_assert_eq!((f.a, f.b, f.size), (l.a, l.b, l.size));
                prop_assert!(
                    (f.distance - l.distance).abs() <= 1e-9 * f.distance.abs().max(1.0),
                    "{:?}: {} vs {}", linkage, f.distance, l.distance
                );
                thresholds.push(l.distance * 0.999);
                thresholds.push(l.distance * 1.001);
            }
            for t in thresholds {
                prop_assert_eq!(fast.cut(t), legacy.cut(t), "{:?} t={}", linkage, t);
            }
            for k in 1..=n {
                prop_assert_eq!(fast.cut_into(k), legacy.cut_into(k), "{:?} k={}", linkage, k);
            }
        }
    }

    /// Every cluster member matches the signature generated from its own
    /// cluster (conjunction soundness).
    #[test]
    fn members_match_own_signature(seed_pkt in arb_packet(), copies in 2usize..6) {
        // A cluster of near-duplicates (volatile param varies).
        let packets: Vec<_> = (0..copies)
            .map(|i| {
                let mut b = RequestBuilder::get(seed_pkt.request_line.path());
                if let Some(q) = seed_pkt.request_line.query() {
                    b = b.query("orig", &q.replace('&', "_"));
                }
                b = b.query("i", &i.to_string());
                b.destination(
                    seed_pkt.destination.ip,
                    seed_pkt.destination.port,
                    &seed_pkt.destination.host,
                )
                .build()
            })
            .collect();
        let refs: Vec<&leaksig_http::HttpPacket> = packets.iter().collect();
        if let Some(sig) = signature_from_cluster(0, &refs, &SignatureConfig::default()) {
            for p in &packets {
                prop_assert!(sig.matches(p), "member fails own signature");
            }
        }
    }

    /// Wire encode/decode round-trips arbitrary generated signature sets.
    #[test]
    fn wire_round_trip(packets in proptest::collection::vec(arb_packet(), 2..10)) {
        let refs: Vec<&leaksig_http::HttpPacket> = packets.iter().collect();
        let set = generate_signatures(&refs, &PipelineConfig::default());
        let text = encode(&set);
        let back = decode(&text).unwrap();
        prop_assert_eq!(back.len(), set.len());
        for (x, y) in back.signatures.iter().zip(&set.signatures) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.tokens.len(), y.tokens.len());
            for (tx, ty) in x.tokens.iter().zip(&y.tokens) {
                prop_assert_eq!(tx.field, ty.field);
                prop_assert_eq!(tx.bytes(), ty.bytes());
            }
        }
    }

    /// Wire round-trip over *arbitrary* sets, not just generator output:
    /// every id, host list, token byte pattern, and order hint survives.
    #[test]
    fn arbitrary_sets_survive_the_wire(set in arb_wire_set()) {
        let back = decode(&encode(&set)).unwrap();
        prop_assert_eq!(back.len(), set.len());
        for (x, y) in back.signatures.iter().zip(&set.signatures) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.cluster_size, y.cluster_size);
            prop_assert_eq!(&x.hosts, &y.hosts);
            prop_assert_eq!(x.tokens.len(), y.tokens.len());
            for (tx, ty) in x.tokens.iter().zip(&y.tokens) {
                prop_assert_eq!(tx.field, ty.field);
                prop_assert_eq!(tx.bytes(), ty.bytes());
                prop_assert_eq!(tx.order_hint(), ty.order_hint());
            }
        }
    }

    /// Malformed wire input — truncated at any byte, junk without the
    /// magic header, or extra junk lines — returns an error or a valid
    /// set; it never panics.
    #[test]
    fn malformed_wire_errors_instead_of_panicking(
        set in arb_wire_set(),
        cut_frac in 0.0f64..1.0,
        junk in "[a-z0-9 .=&]{0,32}",
    ) {
        let text = encode(&set);
        // Truncation at an arbitrary byte (encode output is ASCII, so
        // every index is a char boundary).
        let cut = (text.len() as f64 * cut_frac) as usize;
        let _ = decode(&text[..cut.min(text.len())]);
        // Junk without the magic header is always rejected.
        prop_assert!(decode(&junk).is_err());
        // A junk line appended to valid text must not panic (it may
        // happen to parse when it spells a valid directive).
        let mut corrupted = text;
        corrupted.push_str(&junk);
        corrupted.push('\n');
        let _ = decode(&corrupted);
    }

    /// The `LEAKFRAME/1` envelope round-trips any encodable payload.
    #[test]
    fn frame_round_trips(set in arb_wire_set()) {
        let text = encode(&set);
        let framed = frame(&text);
        prop_assert_eq!(unframe(&framed).unwrap(), text.as_str());
    }

    /// Unframing never panics, whatever the bytes — arbitrary garbage,
    /// a valid frame truncated at any byte, or a valid frame with any
    /// single byte flipped. Any mutation of a valid frame must be
    /// *detected*, not silently accepted.
    #[test]
    fn unframe_total_on_arbitrary_and_mutated_input(
        set in arb_wire_set(),
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
        cut_frac in 0.0f64..1.0,
        flip_at_frac in 0.0f64..1.0,
        flip_mask in 1u8..=255,
    ) {
        let _ = unframe(&garbage);

        let framed = frame(&encode(&set));
        let cut = (framed.len() as f64 * cut_frac) as usize;
        if cut < framed.len() {
            prop_assert!(unframe(&framed[..cut]).is_err(), "truncation accepted");
        }

        let mut flipped = framed.clone();
        let at = ((flipped.len() - 1) as f64 * flip_at_frac) as usize;
        flipped[at] ^= flip_mask;
        prop_assert!(unframe(&flipped).is_err(), "bit flip at {} accepted", at);
    }

    /// Streaming reassembly equals whole-buffer unframing for every
    /// chunking of a valid frame: feeding the frame split at an
    /// arbitrary boundary (plus trailing bytes from a second message)
    /// yields Incomplete on every proper prefix and the identical
    /// payload at completion. A split frame is never mistaken for a
    /// malformed one.
    #[test]
    fn unframe_partial_equals_unframe_under_any_split(
        set in arb_wire_set(),
        split_frac in 0.0f64..1.0,
        trailer in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        use leaksig_core::wire::{unframe_partial, FrameProgress};

        let text = encode(&set);
        let framed = frame(&text);
        let whole = unframe(&framed).unwrap();

        // Every proper prefix is Incomplete — including the one at the
        // drawn split point — and never an error.
        let split = ((framed.len() - 1) as f64 * split_frac) as usize;
        for cut in [0, split, framed.len() - 1] {
            prop_assert!(matches!(
                unframe_partial(&framed[..cut]),
                Ok(FrameProgress::Incomplete { .. })
            ), "prefix of {} bytes misjudged", cut);
        }

        // With the next message's bytes already buffered behind it, the
        // frame still decodes identically and consumes exactly itself.
        let mut buf = framed.clone();
        buf.extend_from_slice(&trailer);
        let Ok(FrameProgress::Complete { payload, consumed }) = unframe_partial(&buf) else {
            return Err(TestCaseError::fail("complete frame did not decode"));
        };
        prop_assert_eq!(payload, whole);
        prop_assert_eq!(consumed, framed.len());
    }

    /// Needle matching agrees with a std oracle on arbitrary inputs.
    #[test]
    fn needle_oracle(hay in proptest::collection::vec(any::<u8>(), 0..200),
                     pat in proptest::collection::vec(any::<u8>(), 1..12)) {
        let needle = Needle::new(pat.clone());
        let oracle = hay.windows(pat.len()).any(|w| w == &pat[..]);
        prop_assert_eq!(needle.is_in(&hay), oracle);
    }

    /// Compiled engine vs naive token matching, Conjunction mode: the
    /// automaton must agree with `ConjunctionSignature::matches` on every
    /// (set, packet) pair — including the first-match id and the full
    /// match list. Small alphabets force heavy token overlap, shared
    /// automaton prefixes, and duplicate tokens across signatures.
    #[test]
    fn compiled_conjunction_equals_naive(
        set in arb_collision_set(),
        packets in proptest::collection::vec(arb_collision_packet(), 1..8),
    ) {
        let detector = Detector::new(set.clone());
        for p in &packets {
            let naive: Vec<u32> = set
                .signatures
                .iter()
                .filter(|s| s.matches(p))
                .map(|s| s.id)
                .collect();
            prop_assert_eq!(detector.matches_all(p), &naive[..]);
            prop_assert_eq!(
                detector.match_packet(p).map(|d| d.signature_id),
                naive.first().copied()
            );
        }
        let refs: Vec<&leaksig_http::HttpPacket> = packets.iter().collect();
        let mask: Vec<bool> = refs
            .iter()
            .map(|p| set.signatures.iter().any(|s| s.matches(p)))
            .collect();
        prop_assert_eq!(detector.scan_refs(&refs), mask);
    }

    /// Fraction mode: counter ratios must reproduce the naive
    /// floating-point expression `hits / total >= threshold` bit-for-bit.
    #[test]
    fn compiled_fraction_equals_naive(
        set in arb_collision_set(),
        packets in proptest::collection::vec(arb_collision_packet(), 1..8),
        threshold in prop_oneof![Just(0.25f64), Just(1.0 / 3.0), Just(0.5), Just(0.75), Just(1.0)],
    ) {
        let detector = Detector::with_mode(set.clone(), MatchMode::Fraction(threshold));
        for p in &packets {
            let naive: Vec<u32> = set
                .signatures
                .iter()
                .filter(|s| s.match_fraction(p) >= threshold)
                .map(|s| s.id)
                .collect();
            prop_assert_eq!(detector.matches_all(p), &naive[..]);
            prop_assert_eq!(
                detector.match_packet(p).map(|d| d.signature_id),
                naive.first().copied()
            );
        }
    }

    /// Ordered mode: position-list verification must agree with the
    /// naive greedy in-order scan, including order-hint tie-breaking.
    #[test]
    fn compiled_ordered_equals_naive(
        set in arb_collision_set(),
        packets in proptest::collection::vec(arb_collision_packet(), 1..8),
    ) {
        let detector = Detector::with_mode(set.clone(), MatchMode::Ordered);
        for p in &packets {
            let naive: Vec<u32> = set
                .signatures
                .iter()
                .filter(|s| s.matches_ordered(p))
                .map(|s| s.id)
                .collect();
            prop_assert_eq!(detector.matches_all(p), &naive[..]);
            prop_assert_eq!(
                detector.match_packet(p).map(|d| d.signature_id),
                naive.first().copied()
            );
        }
    }

    /// Zero-copy verdicts are byte-identical to the owned path across all
    /// three match modes: same first-match id and same full match list on
    /// the wire image of every packet, through both the raw-bytes entry
    /// point (view parse + scan) and a pre-parsed borrowed view.
    #[test]
    fn zero_copy_verdicts_equal_owned_all_modes(
        set in arb_collision_set(),
        packets in proptest::collection::vec(arb_collision_packet(), 1..8),
    ) {
        let limits = leaksig_http::ParseLimits::UNLIMITED;
        let modes = [MatchMode::Conjunction, MatchMode::Fraction(0.5), MatchMode::Ordered];
        for mode in modes {
            let detector = Detector::with_mode(set.clone(), mode);
            let mut scanner = detector.scanner();
            let mut scratch = detector.engine().scratch();
            let mut matches_buf: Vec<u32> = Vec::new();
            let mut arena = leaksig_http::ParseArena::new();
            for p in &packets {
                let raw = p.to_bytes();
                let owned_first = detector.match_packet(p).map(|d| d.signature_id);
                let owned_all = detector.matches_all(p);
                let v = scanner.scan_raw(&raw, p.destination.ip, p.destination.port, &limits);
                prop_assert!(!v.parse_failed);
                prop_assert_eq!(v.matched, owned_first, "{:?}", mode);
                arena.reset();
                let view = match leaksig_http::parse_request_view(
                    &raw, p.destination.ip, p.destination.port, &limits, &mut arena,
                ).unwrap() {
                    leaksig_http::ViewOutcome::View(view) => view,
                    leaksig_http::ViewOutcome::Opaque => {
                        return Err(TestCaseError::fail("builder output must view-parse"));
                    }
                };
                prop_assert_eq!(scanner.scan_view(&view).matched, owned_first, "{:?}", mode);
                detector.engine().matched_into(
                    &mut scratch,
                    FieldBytes::from_view(&view),
                    &mut matches_buf,
                );
                let ids: Vec<u32> = matches_buf
                    .iter()
                    .map(|&i| detector.engine().wire_id(i as usize))
                    .collect();
                prop_assert_eq!(ids, owned_all, "{:?}", mode);
            }
        }
    }

    /// The sensitivity probe folded into the engine's single pass agrees
    /// with a field-scoped `PayloadCheck` oracle (same needles run over
    /// request line, cookie, and body separately) on every packet — and
    /// never perturbs the match verdict.
    #[test]
    fn probe_fold_equals_field_scoped_payload_check(
        set in arb_collision_set(),
        packets in proptest::collection::vec(arb_collision_packet(), 1..8),
        values in proptest::collection::vec("[ab ]{1,6}", 1..5),
    ) {
        let tagged: Vec<(u8, &str)> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u8, v.as_str()))
            .collect();
        let check: PayloadCheck<u8> = PayloadCheck::new(tagged);
        let (probe, tags) = check.probe();
        let plain = Detector::new(set.clone());
        let probed = Detector::with_probe(set.clone(), MatchMode::Conjunction, &probe);
        let mut scanner = probed.scanner();
        let limits = leaksig_http::ParseLimits::UNLIMITED;
        for p in &packets {
            let raw = p.to_bytes();
            let v = scanner.scan_raw(&raw, p.destination.ip, p.destination.port, &limits);
            prop_assert_eq!(v.matched, plain.match_packet(p).map(|d| d.signature_id));
            let rline = format!("{} {}", p.request_line.method.as_str(), p.request_line.target);
            let mut want = 0u64;
            for hay in [rline.as_bytes(), p.cookie(), &p.body] {
                for t in check.scan_bytes(hay) {
                    let bit = tags.iter().position(|&x| x == t).unwrap();
                    want |= 1 << bit;
                }
            }
            prop_assert_eq!(v.tags, want);
        }
    }

    /// Rates are bounded for arbitrary consistent counts.
    #[test]
    fn rates_bounded(sens in 1usize..500, norm in 0usize..500,
                     n_frac in 0.0f64..1.0, det_s_frac in 0.0f64..1.0,
                     det_n_frac in 0.0f64..1.0) {
        let sample_n = (sens as f64 * n_frac) as usize;
        let detected_sensitive = sample_n
            + ((sens - sample_n) as f64 * det_s_frac) as usize;
        let detected_normal = (norm as f64 * det_n_frac) as usize;
        let c = Counts {
            sensitive_total: sens,
            normal_total: norm,
            sample_n,
            detected_sensitive,
            detected_normal,
        };
        let r = c.rates();
        prop_assert!(r.true_positive >= 0.0 && r.true_positive <= 1.0);
        prop_assert!(r.false_negative >= 0.0 && r.false_negative <= 1.0);
        prop_assert!(r.false_positive >= 0.0);
        prop_assert!((0.0..=1.0).contains(&c.precision()));
        prop_assert!((0.0..=1.0).contains(&c.recall()));
    }
}

/// `Detector::scan_batch` above the parallel threshold produces the same
/// verdict vector as a single serial scanner, and classifies malformed
/// and opaque (non-UTF-8 request line) records exactly like the owned
/// parser would.
#[test]
fn scan_batch_parallel_matches_serial_and_flags_rejects() {
    use leaksig_core::signature::{signature_from_cluster, SignatureConfig};

    let mk = |slot: &str| {
        RequestBuilder::get("/ad")
            .query("imei", "355195000000017")
            .query("slot", slot)
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
            .build()
    };
    let (a, b) = (mk("1"), mk("2"));
    let sig = signature_from_cluster(42, &[&a, &b], &SignatureConfig::default()).unwrap();
    let detector = Detector::new(SignatureSet {
        signatures: vec![sig],
    });
    let limits = leaksig_http::ParseLimits::intake();

    let hit = mk("9").to_bytes();
    let miss = RequestBuilder::get("/img/cat.png")
        .destination(Ipv4Addr::new(198, 51, 100, 2), 80, "cdn.example")
        .build()
        .to_bytes();
    let garbage = b"definitely not http\r\n\r\n".to_vec();
    // Invalid UTF-8 in the request line: exercises the opaque fallback.
    let opaque = b"GET /\xff\xfe HTTP/1.1\r\nHost: x.example\r\n\r\n".to_vec();
    let raws: Vec<&[u8]> = vec![&hit, &miss, &garbage, &opaque];

    // Enough records to cross the parallel threshold (256).
    let records: Vec<RawPacket<'_>> = (0..600)
        .map(|i| RawPacket {
            raw: raws[i % raws.len()],
            ip: Ipv4Addr::new(203, 0, 113, 9),
            port: 80,
        })
        .collect();

    let parallel = detector.scan_batch(&records, &limits);
    let mut scanner = detector.scanner();
    let serial = scanner.scan_batch(records.iter().copied(), &limits);
    assert_eq!(parallel.as_slice(), serial);

    assert_eq!(parallel[0].matched, Some(42), "hit record");
    assert_eq!(parallel[1].matched, None, "miss record");
    assert!(parallel[2].parse_failed, "garbage record");
    assert!(
        !parallel[3].parse_failed && parallel[3].matched.is_none(),
        "opaque record falls back to the owned parser"
    );
}
