//! SHA-1 message digest (FIPS 180-4).
//!
//! Same block/padding structure as MD5 but big-endian, with an 80-round
//! compression over a 160-bit state and a 16→80 word message schedule.

use crate::Digest;

/// Streaming SHA-1 state.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;

    fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        if data.is_empty() {
            return;
        }

        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            self.compress(chunk.try_into().unwrap());
        }
        let rem = chunks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffer_len = rem.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            120 - self.buffer_len
        };
        let mut tail = Vec::with_capacity(pad_len + 8);
        tail.extend_from_slice(&pad[..pad_len]);
        tail.extend_from_slice(&bit_len.to_be_bytes());
        let saved = self.total_len;
        self.update(&tail);
        self.total_len = saved;
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = Vec::with_capacity(Self::OUTPUT_LEN);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1_hex;

    /// FIPS 180-4 / RFC 3174 test vectors.
    #[test]
    fn fips_vectors() {
        let cases = [
            ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                "The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(sha1_hex(input.as_bytes()), want, "input {input:?}");
        }
    }

    /// One million 'a' characters (the classic long-message vector).
    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            crate::encode_hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_block_edges() {
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(
                crate::encode_hex(&h.finalize()),
                sha1_hex(&data),
                "length {len}"
            );
        }
    }
}
