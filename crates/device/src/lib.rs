#![warn(missing_docs)]
//! `leaksig-device` — the on-device information-flow-control application
//! of Fig. 3b, simulated host-side.
//!
//! The paper's deployment story: a user installs one unprivileged app
//! that (a) periodically fetches server-generated signatures and (b)
//! inspects other applications' outgoing HTTP traffic, prompting the user
//! when a signature matches, without any Android framework modification.
//! This crate reproduces that component's logic:
//!
//! * [`SignatureServer`] / [`SignatureStore`] — versioned publish/fetch of
//!   signature sets over the `leaksig-core` wire format, with a
//!   [`StoreHealth`] ledger (fresh/stale/corrupt/empty) the gate consults;
//! * [`Transport`] / [`SyncClient`] — the fallible distribution channel:
//!   checksummed `LEAKFRAME/1` envelopes, capped exponential backoff with
//!   deterministic jitter, version-conditional fetch, and a
//!   [`FaultyTransport`] wrapper injecting seeded faults for chaos tests;
//! * [`PolicyEngine`] — per-`(app, signature)` decision cache
//!   (allow/block/prompt semantics);
//! * [`PacketGate`] — the interception point: match → decide → forward,
//!   block, or park behind a prompt, with a full audit log and
//!   configurable fail-open/fail-closed degraded modes ([`GateConfig`]);
//! * [`persist`] — reboot-safe snapshots, including the crash-safe
//!   checksummed [`SnapshotVault`](persist::SnapshotVault);
//! * [`CollectionServer`] — the Fig. 3a collection/generation server,
//!   with a hardened raw-bytes intake ([`CollectionServer::ingest_raw`]):
//!   per-source token buckets, hard parse limits, a bounded admission
//!   queue with an explicit [`Shed`] policy, and a reason-tagged
//!   quarantine ledger;
//! * [`RegenerationSupervisor`] — deadline- and panic-guarded §IV
//!   regeneration with delta-debugging bisection that quarantines poison
//!   packets and retries on the cleaned reservoir.
//!
//! What is *not* simulated is the Android plumbing itself (a VPN-service
//! or local-proxy capture loop); the gate takes packets as values, which
//! is exactly what such a loop would hand it.

mod gate;
pub mod persist;
mod policy;
mod server;
mod store;
mod supervise;
pub mod transport;

pub use gate::{AuditRecord, DegradedMode, GateAction, GateConfig, GateStats, PacketGate};
pub use persist::{
    decode_policy, decode_store, encode_policy, encode_store, PersistError, RestoreReport,
    SnapshotVault,
};
pub use policy::{FlowKey, PolicyEngine, UserChoice, Verdict};
pub use server::{
    CollectionServer, IngestConfig, IngestOutcome, QuarantineReason, QuarantineRecord, RateLimit,
    RegenerateOutcome, ServerStats, Shed,
};
pub use supervise::{DefaultRunner, PipelineRunner, RegenerationSupervisor, SupervisorConfig};
pub use store::{InstallError, SignatureServer, SignatureStore, StoreHealth};
pub use transport::{
    Fetched, FaultyTransport, InProcessTransport, RetryPolicy, SyncClient, SyncEvent,
    SyncEventKind, SyncOutcome, SyncReport, Transport, TransportError,
};
