#!/usr/bin/env bash
# Full local gate: everything CI would run, in dependency order.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace --all-targets --all-features -- -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "All checks passed."
