//! The collection server of Fig. 3a as a long-running component.
//!
//! The paper's server "collects application traffic, clustering the data
//! and generating signatures". This module gives that loop a concrete
//! shape: packets are ingested continuously, the payload check routes
//! suspicious ones into a bounded reservoir, and `regenerate` runs the
//! §IV pipeline over the current reservoir and publishes the result to a
//! [`SignatureServer`] that devices sync from.
//!
//! The reservoir uses classic reservoir sampling so the retained sample
//! stays uniform over everything seen, no matter how long the server
//! runs — matching the paper's "select N HTTP packets at random out of
//! the suspicious group".

use crate::store::SignatureServer;
use leaksig_core::payload::PayloadCheck;
use leaksig_core::prelude::*;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Ingest/regeneration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Packets seen.
    pub ingested: u64,
    /// Packets routed to the reservoir.
    pub suspicious: u64,
    /// Packets routed to the normal ring.
    pub normal: u64,
    /// Signature regenerations performed.
    pub regenerations: u64,
}

/// The collection + generation server.
pub struct CollectionServer<T: Copy + Eq + Send> {
    check: PayloadCheck<T>,
    config: PipelineConfig,
    capacity: usize,
    state: Mutex<ServerState>,
}

struct ServerState {
    /// Uniform sample of suspicious packets seen so far.
    reservoir: Vec<leaksig_http::HttpPacket>,
    /// Recent normal packets (ring) for signature validation.
    normal_ring: Vec<leaksig_http::HttpPacket>,
    normal_pos: usize,
    rng: StdRng,
    stats: ServerStats,
}

impl<T: Copy + Eq + Send> CollectionServer<T> {
    /// A server keeping at most `capacity` suspicious packets, using
    /// `check` for the §IV-A split.
    pub fn new(check: PayloadCheck<T>, config: PipelineConfig, capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        CollectionServer {
            check,
            config,
            capacity,
            state: Mutex::new(ServerState {
                reservoir: Vec::with_capacity(capacity),
                normal_ring: Vec::with_capacity(2048),
                normal_pos: 0,
                rng: StdRng::seed_from_u64(seed),
                stats: ServerStats::default(),
            }),
        }
    }

    /// Ingest one captured packet; returns whether it was suspicious.
    pub fn ingest(&self, packet: &leaksig_http::HttpPacket) -> bool {
        let suspicious = self.check.is_suspicious(packet);
        let mut st = self.state.lock();
        st.stats.ingested += 1;
        if suspicious {
            st.stats.suspicious += 1;
            // Reservoir sampling: keep each suspicious packet with
            // probability capacity / seen-so-far.
            if st.reservoir.len() < self.capacity {
                st.reservoir.push(packet.clone());
            } else {
                let seen = st.stats.suspicious;
                let j = st.rng.random_range(0..seen);
                if (j as usize) < self.capacity {
                    let slot = j as usize;
                    st.reservoir[slot] = packet.clone();
                }
            }
        } else {
            st.stats.normal += 1;
            // Bounded ring of recent normal traffic for FP validation.
            if st.normal_ring.len() < 2048 {
                st.normal_ring.push(packet.clone());
            } else {
                let pos = st.normal_pos;
                st.normal_ring[pos] = packet.clone();
                st.normal_pos = (pos + 1) % 2048;
            }
        }
        suspicious
    }

    /// Run the §IV pipeline over (up to) `n` reservoir packets, validate
    /// against the normal ring, and publish to `server`. Returns the
    /// published version, or `None` when no suspicious traffic exists yet
    /// — or when the freshly generated set fails the publisher's deploy
    /// gate (possible only under a loosened `PipelineConfig`), in which
    /// case nothing is published and devices keep their current set.
    pub fn regenerate(&self, n: usize, server: &SignatureServer) -> Option<u64> {
        let mut st = self.state.lock();
        if st.reservoir.is_empty() {
            return None;
        }
        // Sample n of the reservoir (it is already uniform; take a prefix
        // of a shuffle for sub-sampling determinism).
        let mut idx: Vec<usize> = (0..st.reservoir.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = st.rng.random_range(0..=i as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(n);
        let sample: Vec<&leaksig_http::HttpPacket> =
            idx.iter().map(|&i| &st.reservoir[i]).collect();

        let mut set = generate_signatures(&sample, &self.config);
        if let Some(v) = self.config.fp_validation {
            let normal: Vec<&leaksig_http::HttpPacket> =
                st.normal_ring.iter().take(v.sample).collect();
            prune_against_normal(&mut set, &normal, v.max_hits);
        }
        drop_dominated(&mut set);

        st.stats.regenerations += 1;
        server.publish(&set).ok()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.state.lock().stats
    }

    /// Current reservoir size.
    pub fn reservoir_len(&self) -> usize {
        self.state.lock().reservoir.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SignatureStore;
    use leaksig_http::RequestBuilder;
    use std::net::Ipv4Addr;

    fn leak(i: usize) -> leaksig_http::HttpPacket {
        RequestBuilder::get("/getad")
            .query("imei", "355195000000017")
            .query("slot", &(i % 9).to_string())
            .destination(Ipv4Addr::new(203, 0, 113, 3), 80, "ad-maker.info")
            .build()
    }

    fn clean(i: usize) -> leaksig_http::HttpPacket {
        RequestBuilder::get("/img")
            .query("f", &format!("{i:06x}.png"))
            .destination(Ipv4Addr::new(198, 51, 100, 8), 80, "cdn.example.jp")
            .build()
    }

    fn server() -> CollectionServer<&'static str> {
        CollectionServer::new(
            PayloadCheck::new([("imei", "355195000000017")]),
            PipelineConfig::default(),
            64,
            7,
        )
    }

    #[test]
    fn ingest_routes_and_counts() {
        let srv = server();
        for i in 0..30 {
            assert!(srv.ingest(&leak(i)));
            assert!(!srv.ingest(&clean(i)));
        }
        let stats = srv.stats();
        assert_eq!(stats.ingested, 60);
        assert_eq!(stats.suspicious, 30);
        assert_eq!(stats.normal, 30);
        assert_eq!(srv.reservoir_len(), 30);
    }

    #[test]
    fn reservoir_stays_bounded() {
        let srv = server();
        for i in 0..500 {
            srv.ingest(&leak(i));
        }
        assert_eq!(srv.reservoir_len(), 64);
        assert_eq!(srv.stats().suspicious, 500);
    }

    #[test]
    fn regenerate_publishes_working_signatures() {
        let srv = server();
        let publisher = SignatureServer::new();
        assert_eq!(srv.regenerate(20, &publisher), None, "nothing ingested yet");

        for i in 0..100 {
            srv.ingest(&leak(i));
            srv.ingest(&clean(i));
        }
        let version = srv.regenerate(20, &publisher).expect("publishes");
        assert_eq!(version, 1);
        assert_eq!(srv.stats().regenerations, 1);

        // A device syncs and detects fresh module traffic.
        let store = SignatureStore::new();
        assert!(store.sync(&publisher).unwrap());
        assert!(store.match_packet(&leak(999)).is_some());
        assert!(store.match_packet(&clean(999)).is_none());

        // Second regeneration bumps the version.
        assert_eq!(srv.regenerate(20, &publisher), Some(2));
    }
}
