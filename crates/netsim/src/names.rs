//! Deterministic name synthesis for apps, packages, and long-tail hosts.

use rand::{Rng, RngExt};

const SYLLABLES: &[&str] = &[
    "mo", "bi", "ka", "ri", "to", "na", "su", "ha", "ze", "ko", "ya", "mi", "ta", "ren", "go",
    "shi", "ku", "ma", "po", "do", "ne", "ki", "ra", "wa", "fu", "sa", "te", "yu", "no", "ba",
];

const GENRES: &[&str] = &[
    "game",
    "puzzle",
    "news",
    "camera",
    "weather",
    "comic",
    "recipe",
    "train",
    "chat",
    "music",
    "novel",
    "quiz",
    "wallpaper",
    "battery",
    "memo",
    "coupon",
    "radio",
    "map",
    "diary",
    "alarm",
];

const AD_PREFIXES: &[&str] = &[
    "ads", "ad", "adsv", "imp", "bid", "track", "sdk", "mobile", "ssp", "net", "cnt", "beacon",
    "deliver", "cl", "banner", "media",
];

const AD_TLDS: &[&str] = &[".jp", ".com", ".net", ".info", ".mobi", ".co.jp", ".asia"];

/// A pronounceable lowercase word of `syllables` syllables.
pub fn word<R: Rng + ?Sized>(rng: &mut R, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
    }
    w
}

/// An app display name, e.g. `"mobika puzzle"`.
pub fn app_name<R: Rng + ?Sized>(rng: &mut R) -> String {
    let syllables = 2 + rng.random_range(0..2u8) as usize;
    format!(
        "{} {}",
        word(rng, syllables),
        GENRES[rng.random_range(0..GENRES.len())]
    )
}

/// A package id, e.g. `"jp.co.mobika.puzzle"`.
pub fn package_name<R: Rng + ?Sized>(rng: &mut R, display: &str) -> String {
    let mut parts = display.split(' ');
    let vendor = parts.next().unwrap_or("app");
    let genre = parts.next().unwrap_or("main");
    if rng.random_bool(0.6) {
        format!("jp.co.{vendor}.{genre}")
    } else {
        format!("com.{vendor}.{genre}")
    }
}

/// A minor ad-network hostname, e.g. `"imp.karibato.mobi"`.
pub fn ad_host<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!(
        "{}.{}{}",
        AD_PREFIXES[rng.random_range(0..AD_PREFIXES.len())],
        word(rng, 3),
        AD_TLDS[rng.random_range(0..AD_TLDS.len())]
    )
}

/// A filler content/API hostname tied to an app's vendor word.
pub fn filler_host<R: Rng + ?Sized>(rng: &mut R, vendor: &str) -> String {
    const KINDS: &[&str] = &["api", "img", "cdn", "static", "app", "dl", "news", "sync"];
    let kind = KINDS[rng.random_range(0..KINDS.len())];
    if rng.random_bool(0.7) {
        format!("{kind}.{vendor}.jp")
    } else {
        format!("{kind}.{}.com", word(rng, 3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(app_name(&mut a), app_name(&mut b));
        assert_eq!(ad_host(&mut a), ad_host(&mut b));
    }

    #[test]
    fn package_names_are_dotted() {
        let mut rng = StdRng::seed_from_u64(3);
        let name = app_name(&mut rng);
        let pkg = package_name(&mut rng, &name);
        assert!(pkg.split('.').count() >= 3, "{pkg}");
        assert!(pkg.is_ascii());
    }

    #[test]
    fn hosts_look_like_fqdns() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let h = ad_host(&mut rng);
            assert!(h.contains('.'), "{h}");
            assert!(h
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b == b'.' || b.is_ascii_digit()));
            let f = filler_host(&mut rng, "mobika");
            assert!(f.contains('.'), "{f}");
        }
    }
}
