//! Persistence of the device state across restarts.
//!
//! The on-device app must survive a reboot without re-prompting for every
//! previously-decided flow and without re-fetching signatures. Two small
//! text formats:
//!
//! ```text
//! LEAKPOLICY/1
//! allow jp.co.mobika.puzzle 3
//! block com.zemi.news 7
//! ```
//!
//! and the signature store snapshot, which is the `leaksig-core` wire
//! format prefixed by a version line:
//!
//! ```text
//! LEAKSTORE/1 5
//! LEAKSIG/1
//! ...
//! ```
//!
//! On-disk durability is handled by [`SnapshotVault`]: checksummed,
//! generation-numbered snapshot files (`LEAKSNAP/1` header) written
//! temp-then-rename so a crash at any point leaves either the old or the
//! new snapshot fully intact, and a restore path that walks generations
//! newest-first, discarding anything the checksum disowns, until it finds
//! the last known good state.

use crate::policy::{PolicyEngine, UserChoice};
use crate::store::{SignatureStore, StoreHealth};
use leaksig_faults::CrashPoint;
use std::path::{Path, PathBuf};

const POLICY_MAGIC: &str = "LEAKPOLICY/1";
const STORE_MAGIC: &str = "LEAKSTORE/1";
const SNAP_MAGIC: &str = "LEAKSNAP/1";

/// Persistence failure with a user-facing message.
#[derive(Debug)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PersistError {}

/// Serialize remembered decisions. Only `*Always` choices persist; `Once`
/// answers were never remembered to begin with.
pub fn encode_policy(policy: &PolicyEngine) -> String {
    let mut out = String::from(POLICY_MAGIC);
    out.push('\n');
    let mut rows = policy.remembered_rows();
    rows.sort();
    for (app, sig, allow) in rows {
        out.push_str(if allow { "allow " } else { "block " });
        out.push_str(&app);
        out.push(' ');
        out.push_str(&sig.to_string());
        out.push('\n');
    }
    out
}

/// Parse a policy snapshot into a fresh engine.
pub fn decode_policy(text: &str) -> Result<PolicyEngine, PersistError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(POLICY_MAGIC) {
        return Err(PersistError(format!("missing {POLICY_MAGIC} header")));
    }
    let mut policy = PolicyEngine::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(' ');
        let (verb, app, sig) = (parts.next(), parts.next(), parts.next());
        let (Some(verb), Some(app), Some(sig), None) = (verb, app, sig, parts.next()) else {
            return Err(PersistError(format!("malformed policy line: {line:?}")));
        };
        let sig: u32 = sig
            .parse()
            .map_err(|_| PersistError(format!("bad signature id in {line:?}")))?;
        let choice = match verb {
            "allow" => UserChoice::AllowAlways,
            "block" => UserChoice::BlockAlways,
            other => return Err(PersistError(format!("unknown verb {other:?}"))),
        };
        policy.resolve(app, sig, choice);
    }
    Ok(policy)
}

/// Snapshot a signature store (version + installed wire text).
pub fn encode_store(store: &SignatureStore) -> String {
    format!("{STORE_MAGIC} {}\n{}", store.version(), store.wire_text())
}

/// Restore a store snapshot.
pub fn decode_store(text: &str) -> Result<SignatureStore, PersistError> {
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| PersistError("empty store snapshot".to_string()))?;
    let version: u64 = header
        .strip_prefix(STORE_MAGIC)
        .and_then(|rest| rest.trim().parse().ok())
        .ok_or_else(|| PersistError(format!("bad store header: {header:?}")))?;
    let store = SignatureStore::new();
    store
        .install(version, body)
        .map_err(|e| PersistError(format!("bad signature payload: {e}")))?;
    Ok(store)
}

/// Checksummed, generation-numbered, crash-safe snapshot storage for the
/// signature store.
///
/// Each save writes `store.<generation>.snap`:
///
/// ```text
/// LEAKSNAP/1 <generation> <body-byte-length> <sha1-hex-of-body>
/// LEAKSTORE/1 <version>
/// LEAKSIG/1
/// ...
/// ```
///
/// via a temp file renamed into place, so the final path only ever holds
/// a complete snapshot on a POSIX filesystem. Restore walks generations
/// newest-first and verifies length + checksum + decode before trusting
/// one; a torn or bit-rotted newest snapshot therefore *rolls back* to
/// the previous generation instead of corrupting the device.
#[derive(Debug)]
pub struct SnapshotVault {
    dir: PathBuf,
    /// Good generations retained after a save (older ones are pruned).
    keep: usize,
}

/// What [`SnapshotVault::restore_store`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreReport {
    /// Generation actually restored (`None` = nothing usable on disk).
    pub generation: Option<u64>,
    /// Snapshot files that failed verification and were skipped.
    pub skipped_corrupt: usize,
    /// Health the restored store reports.
    pub health: StoreHealth,
}

impl RestoreReport {
    /// Whether a newer-but-damaged snapshot was bypassed in favour of an
    /// older good one.
    pub fn rolled_back(&self) -> bool {
        self.skipped_corrupt > 0 && self.generation.is_some()
    }
}

impl SnapshotVault {
    /// A vault rooted at `dir` (created if absent), retaining the 3 most
    /// recent good generations.
    pub fn new(dir: impl Into<PathBuf>) -> Result<SnapshotVault, PersistError> {
        Self::with_retention(dir, 3)
    }

    /// A vault retaining `keep` generations (minimum 1).
    pub fn with_retention(dir: impl Into<PathBuf>, keep: usize) -> Result<SnapshotVault, PersistError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| PersistError(format!("cannot create {}: {e}", dir.display())))?;
        Ok(SnapshotVault {
            dir,
            keep: keep.max(1),
        })
    }

    fn snap_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("store.{generation}.snap"))
    }

    /// Generations currently on disk, ascending (content unverified).
    pub fn generations(&self) -> Vec<u64> {
        let mut gens: Vec<u64> = match std::fs::read_dir(&self.dir) {
            Err(_) => return Vec::new(),
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .filter_map(|e| parse_generation(&e.path()))
                .collect(),
        };
        gens.sort_unstable();
        gens.dedup();
        gens
    }

    /// Persist `store` as the next generation. Returns the generation
    /// written.
    pub fn save_store(&self, store: &SignatureStore) -> Result<u64, PersistError> {
        self.save_store_with_crash(store, None)
            .map(|g| g.expect("no crash injected"))
    }

    /// [`SnapshotVault::save_store`] with an injected crash for chaos
    /// testing. Returns `Ok(None)` when the simulated power loss struck
    /// (the vault may now hold a torn file for restore to reject).
    pub fn save_store_with_crash(
        &self,
        store: &SignatureStore,
        crash: Option<CrashPoint>,
    ) -> Result<Option<u64>, PersistError> {
        let generation = self.generations().last().copied().unwrap_or(0) + 1;
        let body = encode_store(store);
        let mut snap = format!(
            "{SNAP_MAGIC} {generation} {} {}\n",
            body.len(),
            leaksig_hash::sha1_hex(body.as_bytes())
        );
        snap.push_str(&body);

        let final_path = self.snap_path(generation);
        let tmp_path = self.dir.join(format!("store.{generation}.snap.tmp"));
        let write = |path: &Path, bytes: &[u8]| {
            std::fs::write(path, bytes)
                .map_err(|e| PersistError(format!("cannot write {}: {e}", path.display())))
        };

        match crash {
            Some(CrashPoint::BeforeWrite) => return Ok(None),
            Some(CrashPoint::TornWrite { keep_permille }) => {
                // A non-atomic writer died mid-flush: partial bytes in
                // the final path. Restore must catch this via checksum.
                let mut torn = snap.into_bytes();
                leaksig_faults::truncate_bytes(&mut torn, keep_permille);
                write(&final_path, &torn)?;
                return Ok(None);
            }
            Some(CrashPoint::BeforeRename) => {
                // Crash between temp write and rename: orphan temp only.
                write(&tmp_path, snap.as_bytes())?;
                return Ok(None);
            }
            None => {}
        }

        write(&tmp_path, snap.as_bytes())?;
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| PersistError(format!("cannot rename into {}: {e}", final_path.display())))?;
        self.prune(generation);
        Ok(Some(generation))
    }

    /// Drop generations older than the retention window, plus any orphan
    /// temp files from interrupted saves.
    fn prune(&self, newest: u64) {
        for gen in self.generations() {
            if gen + self.keep as u64 <= newest {
                let _ = std::fs::remove_file(self.snap_path(gen));
            }
        }
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for entry in rd.filter_map(|e| e.ok()) {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "tmp") {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
    }

    /// Restore the newest verifiable snapshot.
    ///
    /// Walks generations newest-first; each candidate must pass the
    /// `LEAKSNAP/1` header check, the length + SHA-1 verification, and
    /// [`decode_store`] (which includes the deploy gate). The first
    /// survivor wins. When nothing on disk is usable the device restarts
    /// on an empty store — marked [`StoreHealth::Corrupt`] if damaged
    /// snapshots were present (so the gate can fail closed), or
    /// [`StoreHealth::Empty`] on a genuinely fresh device.
    pub fn restore_store(&self) -> (SignatureStore, RestoreReport) {
        let mut skipped = 0usize;
        for gen in self.generations().into_iter().rev() {
            let path = self.snap_path(gen);
            let Ok(bytes) = std::fs::read(&path) else {
                skipped += 1;
                continue;
            };
            match verify_snapshot(&bytes, gen) {
                Ok(body) => match decode_store(body) {
                    Ok(store) => {
                        let report = RestoreReport {
                            generation: Some(gen),
                            skipped_corrupt: skipped,
                            health: store.health(),
                        };
                        return (store, report);
                    }
                    Err(_) => skipped += 1,
                },
                Err(_) => skipped += 1,
            }
        }
        let store = SignatureStore::new();
        if skipped > 0 {
            store.mark_corrupt();
        }
        let report = RestoreReport {
            generation: None,
            skipped_corrupt: skipped,
            health: store.health(),
        };
        (store, report)
    }
}

/// `store.<gen>.snap` → `gen`.
fn parse_generation(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("store.")?;
    let gen = rest.strip_suffix(".snap")?;
    gen.parse().ok()
}

/// Verify a `LEAKSNAP/1` file: header shape, generation echo, declared
/// length, SHA-1. Returns the trusted body text.
fn verify_snapshot(bytes: &[u8], expect_gen: u64) -> Result<&str, PersistError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| PersistError("snapshot has no header line".to_string()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| PersistError("snapshot header is not UTF-8".to_string()))?;
    let body = &bytes[newline + 1..];

    let mut parts = header.split_whitespace();
    if parts.next() != Some(SNAP_MAGIC) {
        return Err(PersistError(format!("missing {SNAP_MAGIC} header")));
    }
    let gen: u64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PersistError("bad generation in snapshot header".to_string()))?;
    if gen != expect_gen {
        return Err(PersistError(format!(
            "snapshot header claims generation {gen}, file name says {expect_gen}"
        )));
    }
    let len: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PersistError("bad length in snapshot header".to_string()))?;
    let digest = parts
        .next()
        .ok_or_else(|| PersistError("missing digest in snapshot header".to_string()))?;
    if parts.next().is_some() {
        return Err(PersistError("trailing junk in snapshot header".to_string()));
    }
    if body.len() != len {
        return Err(PersistError(format!(
            "snapshot body length {} does not match declared {len} (torn write?)",
            body.len()
        )));
    }
    if !leaksig_hash::verify_sha1_hex(body, digest) {
        return Err(PersistError("snapshot checksum mismatch".to_string()));
    }
    std::str::from_utf8(body).map_err(|_| PersistError("snapshot body is not UTF-8".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SignatureServer;
    use leaksig_core::prelude::*;
    use leaksig_http::RequestBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn policy_round_trip() {
        let mut p = PolicyEngine::new();
        p.resolve("jp.co.a.game", 1, UserChoice::AllowAlways);
        p.resolve("jp.co.a.game", 2, UserChoice::BlockAlways);
        p.resolve("com.b.news", 1, UserChoice::BlockAlways);
        p.resolve("com.c.memo", 9, UserChoice::AllowOnce); // not persisted

        let text = encode_policy(&p);
        let back = decode_policy(&text).unwrap();
        assert_eq!(back.remembered_count(), 3);
        use crate::policy::Verdict;
        assert_eq!(back.decide("jp.co.a.game", Some(1)), Verdict::Forward);
        assert_eq!(back.decide("jp.co.a.game", Some(2)), Verdict::Block);
        assert_eq!(back.decide("com.b.news", Some(1)), Verdict::Block);
        assert_eq!(back.decide("com.c.memo", Some(9)), Verdict::Prompt);
    }

    #[test]
    fn policy_rejects_malformed() {
        assert!(decode_policy("").is_err());
        assert!(decode_policy("LEAKPOLICY/1\nallow app\n").is_err());
        assert!(decode_policy("LEAKPOLICY/1\nmaybe app 3\n").is_err());
        assert!(decode_policy("LEAKPOLICY/1\nallow app x\n").is_err());
        assert!(decode_policy("LEAKPOLICY/1\nallow app 3 extra\n").is_err());
    }

    #[test]
    fn store_round_trip() {
        let mk = |slot: &str| {
            RequestBuilder::get("/getad")
                .query("imei", "355195000000017")
                .query("slot", slot)
                .destination(Ipv4Addr::new(203, 0, 113, 3), 80, "ad-maker.info")
                .build()
        };
        let server = SignatureServer::new();
        server
            .publish(&generate_signatures(&[&mk("1"), &mk("2")], &{
                let mut cfg = PipelineConfig::default();
                cfg.signature.include_singletons = false;
                cfg
            }))
            .unwrap();
        let store = SignatureStore::new();
        store.sync(&server).unwrap();

        let snapshot = encode_store(&store);
        let restored = decode_store(&snapshot).unwrap();
        assert_eq!(restored.version(), store.version());
        assert_eq!(restored.signature_count(), store.signature_count());
        assert!(restored.match_packet(&mk("42")).is_some());
    }

    #[test]
    fn store_rejects_malformed() {
        assert!(decode_store("").is_err());
        assert!(decode_store("WAT 1\nLEAKSIG/1\n").is_err());
        assert!(decode_store("LEAKSTORE/1 x\nLEAKSIG/1\n").is_err());
        assert!(decode_store("LEAKSTORE/1 3\nnot-signatures\n").is_err());
    }

    fn armed_store(version: u64) -> SignatureStore {
        let mk = |slot: &str| {
            RequestBuilder::get("/getad")
                .query("imei", "355195000000017")
                .query("slot", slot)
                .destination(Ipv4Addr::new(203, 0, 113, 3), 80, "ad-maker.info")
                .build()
        };
        let set = generate_signatures(&[&mk("1"), &mk("2")], &{
            let mut cfg = PipelineConfig::default();
            cfg.signature.include_singletons = false;
            cfg
        });
        let store = SignatureStore::new();
        store
            .install(version, &leaksig_core::wire::encode(&set))
            .unwrap();
        store
    }

    fn temp_vault_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "leaksig-vault-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn vault_round_trip_and_retention() {
        let dir = temp_vault_dir("roundtrip");
        let vault = SnapshotVault::new(&dir).unwrap();

        // No snapshots yet: a fresh device, not a corrupt one.
        let (empty, report) = vault.restore_store();
        assert_eq!(report.generation, None);
        assert_eq!(report.health, StoreHealth::Empty);
        assert_eq!(empty.version(), 0);

        for v in 1..=5u64 {
            let store = armed_store(v);
            assert_eq!(vault.save_store(&store).unwrap(), v);
        }
        // Retention keeps the 3 newest generations.
        assert_eq!(vault.generations(), vec![3, 4, 5]);

        let (restored, report) = vault.restore_store();
        assert_eq!(report.generation, Some(5));
        assert!(!report.rolled_back());
        assert_eq!(restored.version(), 5);
        assert_eq!(restored.health(), StoreHealth::Fresh);
        assert!(restored.signature_count() >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_rolls_back_to_last_known_good() {
        use leaksig_faults::CrashPoint;
        let dir = temp_vault_dir("torn");
        let vault = SnapshotVault::new(&dir).unwrap();
        vault.save_store(&armed_store(1)).unwrap();

        // Power loss mid-write: half the bytes of generation 2 land in
        // the final path.
        let crashed = vault
            .save_store_with_crash(
                &armed_store(2),
                Some(CrashPoint::TornWrite { keep_permille: 500 }),
            )
            .unwrap();
        assert_eq!(crashed, None);
        assert_eq!(vault.generations(), vec![1, 2], "torn file is present");

        let (restored, report) = vault.restore_store();
        assert_eq!(report.generation, Some(1), "rolled back past the torn file");
        assert_eq!(report.skipped_corrupt, 1);
        assert!(report.rolled_back());
        assert_eq!(restored.version(), 1);
        assert_eq!(restored.health(), StoreHealth::Fresh);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_rename_preserves_old_state() {
        use leaksig_faults::CrashPoint;
        let dir = temp_vault_dir("prerename");
        let vault = SnapshotVault::new(&dir).unwrap();
        vault.save_store(&armed_store(1)).unwrap();

        for crash in [CrashPoint::BeforeWrite, CrashPoint::BeforeRename] {
            let crashed = vault
                .save_store_with_crash(&armed_store(9), Some(crash))
                .unwrap();
            assert_eq!(crashed, None);
            let (restored, report) = vault.restore_store();
            assert_eq!(report.generation, Some(1));
            assert_eq!(report.skipped_corrupt, 0, "atomic protocol: no damage");
            assert_eq!(restored.version(), 1);
        }
        // The next clean save sweeps the orphan temp file.
        vault.save_store(&armed_store(2)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "orphan temp files pruned");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_generations_corrupt_restores_empty_and_flags_it() {
        let dir = temp_vault_dir("allbad");
        let vault = SnapshotVault::new(&dir).unwrap();
        vault.save_store(&armed_store(1)).unwrap();
        vault.save_store(&armed_store(2)).unwrap();
        // Bit-rot both snapshots on disk.
        for gen in vault.generations() {
            let path = dir.join(format!("store.{gen}.snap"));
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
        }
        let (restored, report) = vault.restore_store();
        assert_eq!(report.generation, None);
        assert_eq!(report.skipped_corrupt, 2);
        assert_eq!(report.health, StoreHealth::Corrupt);
        assert_eq!(restored.version(), 0, "no corrupt snapshot was trusted");
        assert_eq!(restored.health(), StoreHealth::Corrupt);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_header_lies_are_rejected() {
        let dir = temp_vault_dir("lies");
        let vault = SnapshotVault::new(&dir).unwrap();
        vault.save_store(&armed_store(1)).unwrap();
        let path = dir.join("store.1.snap");
        let original = std::fs::read_to_string(&path).unwrap();

        // A file renamed to masquerade as a different generation fails
        // the generation echo check.
        std::fs::write(dir.join("store.7.snap"), &original).unwrap();
        let (restored, report) = vault.restore_store();
        assert_eq!(report.generation, Some(1), "impostor generation skipped");
        assert_eq!(report.skipped_corrupt, 1);
        assert_eq!(restored.version(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
