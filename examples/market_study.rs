//! The server side of Fig. 3a at market scale: generate a synthetic
//! Android market, split its traffic with the payload check, run the full
//! clustering + signature pipeline, and report detection quality — a
//! compact version of the paper's §V evaluation.
//!
//! ```text
//! cargo run --release --example market_study          # 10% scale
//! cargo run --release --example market_study -- 7 1.0 # paper scale
//! ```

use leaksig::core::prelude::*;
use leaksig::netsim::{stats, Dataset, MarketConfig, SensitiveKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.1);

    println!("== generating market (seed {seed}, scale {scale}) ==");
    let data = Dataset::generate(MarketConfig::scaled(seed, scale));
    println!(
        "{} apps, {} packets, {} destinations",
        data.model.apps.len(),
        data.packets.len(),
        data.model.domains.len()
    );

    // The §IV-A payload check, armed with the device's identifiers.
    let check: PayloadCheck<SensitiveKind> = PayloadCheck::new(data.model.device.all_values());
    let labels: Vec<bool> = data
        .packets
        .iter()
        .map(|p| check.is_suspicious(&p.packet))
        .collect();
    let suspicious = labels.iter().filter(|&&s| s).count();
    println!(
        "payload check: {suspicious} suspicious / {} normal",
        labels.len() - suspicious
    );

    println!("\n== top destinations by app count ==");
    for row in stats::per_domain(&data).iter().take(10) {
        println!(
            "  {:<26} {:>7} pkts {:>5} apps",
            row.domain, row.packets, row.apps
        );
    }

    println!("\n== leakage by type ==");
    for s in stats::per_kind(&data) {
        println!(
            "  {:<22} {:>7} pkts {:>5} apps {:>4} destinations",
            s.kind.label(),
            s.packets,
            s.apps,
            s.destinations
        );
    }

    // Fig. 4's experiment at one sample size.
    let n = ((300.0 * scale).round() as usize).max(20);
    println!("\n== clustering + signature generation (N = {n}) ==");
    let packets: Vec<&leaksig::http::HttpPacket> = data.packets.iter().map(|p| &p.packet).collect();
    let t0 = std::time::Instant::now();
    let out = run_experiment_refs(&packets, &labels, n, &PipelineConfig::default());
    println!(
        "{} signatures ({} tokens) from {} candidate nodes in {:?}",
        out.signatures.len(),
        out.signatures.token_count(),
        out.clusters,
        t0.elapsed()
    );
    println!(
        "TP {:.1}%   FN {:.1}%   FP {:.1}%   (precision {:.3}, recall {:.3}, F1 {:.3})",
        100.0 * out.rates.true_positive,
        100.0 * out.rates.false_negative,
        100.0 * out.rates.false_positive,
        out.counts.precision(),
        out.counts.recall(),
        out.counts.f1()
    );

    // The three most productive signatures.
    let detector = Detector::new(out.signatures);
    let mut hits = vec![0usize; detector.signatures().len()];
    for p in &packets {
        if let Some(d) = detector.match_packet(p) {
            if let Some(pos) = detector
                .signatures()
                .iter()
                .position(|s| s.id == d.signature_id)
            {
                hits[pos] += 1;
            }
        }
    }
    let mut by_hits: Vec<(usize, usize)> = hits.into_iter().enumerate().collect();
    by_hits.sort_by_key(|&(_, h)| std::cmp::Reverse(h));
    println!("\n== most productive signatures ==");
    for &(idx, h) in by_hits.iter().take(3) {
        let sig = &detector.signatures()[idx];
        println!(
            "  signature {} — {} detections, cluster of {}, {} host(s)",
            sig.id,
            h,
            sig.cluster_size,
            sig.hosts.len()
        );
        for tok in sig.tokens.iter().take(4) {
            println!(
                "     [{:?}] {:?}",
                tok.field,
                String::from_utf8_lossy(tok.bytes())
            );
        }
    }
}
