//! **Ablation** (ours): which design choices in §IV actually carry the
//! result? Five variants, evaluated at a fixed (scaled) N = 300:
//!
//! 1. baseline — corrected convention, LZSS NCD, destination distance on,
//!    generic-token filtering on, all-nodes signature generation;
//! 2. distance convention — the paper-literal §IV-B formulas as printed;
//! 3. destination distance off (content-only clustering);
//! 4. LZW instead of LZSS behind the NCD;
//! 5. generic-token filtering off (§VI's `GET *` hazard);
//! 6. single-cut selection instead of all-dendrogram-nodes.
//!
//! ```text
//! cargo run --release -p leaksig-bench --bin ablation
//! ```

use leaksig_bench::{cli_config, generate, pct, rule};
use leaksig_compress::{Compressor, Lzh, Lzss, Lzw};
use leaksig_core::eval::tally;
use leaksig_core::prelude::*;
use leaksig_http::HttpPacket;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Run one variant end to end with an explicit compressor.
fn run_variant<C: Compressor + Sync>(
    compressor: C,
    packets: &[&HttpPacket],
    labels: &[bool],
    n: usize,
    cfg: &PipelineConfig,
) -> ExperimentOutcome {
    let mut suspicious: Vec<usize> = (0..packets.len()).filter(|&i| labels[i]).collect();
    let mut rng = StdRng::seed_from_u64(cfg.sample_seed);
    suspicious.shuffle(&mut rng);
    suspicious.truncate(n);
    let sample: Vec<&HttpPacket> = suspicious.iter().map(|&i| packets[i]).collect();
    let mut sampled = vec![false; packets.len()];
    for &i in &suspicious {
        sampled[i] = true;
    }

    let mut set = generate_signatures_with(compressor, &sample, cfg);
    if let Some(v) = cfg.fp_validation {
        let mut normal: Vec<usize> = (0..packets.len()).filter(|&i| !labels[i]).collect();
        let mut vrng = StdRng::seed_from_u64(cfg.sample_seed ^ 0x4650);
        normal.shuffle(&mut vrng);
        normal.truncate(v.sample);
        let normal_sample: Vec<&HttpPacket> = normal.iter().map(|&i| packets[i]).collect();
        prune_against_normal(&mut set, &normal_sample, v.max_hits);
    }
    drop_dominated(&mut set);
    let detector = Detector::new(set);
    let detected = detector.scan(packets.iter().copied());
    let counts = tally(labels, &detected, &sampled);
    ExperimentOutcome {
        rates: counts.rates(),
        counts,
        clusters: sample.len().saturating_mul(2).saturating_sub(1),
        signatures: SignatureSet {
            signatures: detector.signatures().to_vec(),
        },
        timings: StageTimings::default(),
    }
}

fn main() {
    let config = cli_config();
    let data = generate(config);
    let packets: Vec<&HttpPacket> = data.packets.iter().map(|p| &p.packet).collect();
    let labels: Vec<bool> = data.packets.iter().map(|p| p.is_sensitive()).collect();
    let n = ((300.0 * config.scale).round() as usize).max(10);
    eprintln!("ablation at N = {n}");

    let base = PipelineConfig::default();

    let mut literal = base.clone();
    literal.distance.convention = DistanceConvention::PaperLiteral;

    let mut no_dest = base.clone();
    no_dest.distance.destination_weight = 0.0;

    let mut unfiltered = base.clone();
    unfiltered.signature.boilerplate.clear();
    unfiltered.signature.min_anchor_len = 1;

    let mut single_cut = base.clone();
    single_cut.selection = ClusterSelection::Cut(1.6);

    // 0 = LZSS, 1 = LZW, 2 = LZSS+Huffman.
    let variants: Vec<(&str, PipelineConfig, u8)> = vec![
        (
            "baseline (corrected, LZSS, dst on, filter on)",
            base.clone(),
            0,
        ),
        ("paper-literal distance convention", literal, 0),
        ("destination distance off", no_dest, 0),
        ("LZW compressor for NCD", base.clone(), 1),
        ("LZSS+Huffman (deflate-shaped) for NCD", base.clone(), 2),
        ("generic-token filter off", unfiltered, 0),
        ("single-cut selection (theta = 1.6)", single_cut, 0),
    ];

    println!("Ablation — fixed N = {n}\n");
    println!(
        "{:<46} {:>7} {:>7} {:>7} {:>6} {:>6}",
        "variant", "TP", "FN", "FP", "F1", "sigs"
    );
    rule(84);
    for (name, cfg, compressor) in variants {
        let out = match compressor {
            1 => run_variant(Lzw, &packets, &labels, n, &cfg),
            2 => run_variant(Lzh::default(), &packets, &labels, n, &cfg),
            _ => run_variant(Lzss::default(), &packets, &labels, n, &cfg),
        };
        println!(
            "{:<46} {:>7} {:>7} {:>7} {:>6.3} {:>6}",
            name,
            pct(out.rates.true_positive),
            pct(out.rates.false_negative),
            pct(out.rates.false_positive),
            out.counts.f1(),
            out.signatures.len(),
        );
    }
    rule(84);
}
