#!/usr/bin/env bash
# Full local gate: everything CI would run, in dependency order.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace --all-targets --all-features -- -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --quiet

# Chaos soaks across the CI fault-seed matrix: every seed drives a
# deterministic fault-injected run — distribution faults must still
# converge, ingestion faults must be quarantined without losing recall.
CHAOS_SEEDS="${CHAOS_SEEDS:-1,2,3,4,5}"
echo "==> chaos soak (seeds ${CHAOS_SEEDS})"
CHAOS_SEEDS="$CHAOS_SEEDS" cargo test --quiet --test chaos

echo "==> ingest chaos soak (seeds ${CHAOS_SEEDS})"
CHAOS_SEEDS="$CHAOS_SEEDS" cargo test --quiet --test ingest_chaos

echo "==> bench smoke"
scripts/bench.sh --smoke

echo "All checks passed."
