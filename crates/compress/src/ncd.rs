//! Normalized compression distance (Cilibrasi & Vitányi).
//!
//! `ncd(x, y) = (C(xy) − min(C(x), C(y))) / max(C(x), C(y))`
//!
//! For a normal compressor the value is ≈0 for highly similar strings and
//! ≈1 for unrelated ones; small excursions above 1 are expected from real
//! compressors' imperfections. The paper applies this to the request-line,
//! cookie, and message-body fields of HTTP packets (§IV-C).

use crate::Compressor;

/// NCD of `x` and `y` under compressor `c`.
///
/// Degenerate inputs: when both strings are empty the distance is `0.0`
/// (identical). When exactly one is empty, the formula still applies —
/// `C("")` is small but nonzero for framed compressors, which keeps the
/// result finite.
pub fn ncd<C: Compressor>(c: &C, x: &[u8], y: &[u8]) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    let cx = c.compressed_len(x);
    let cy = c.compressed_len(y);
    let mut xy = Vec::with_capacity(x.len() + y.len());
    xy.extend_from_slice(x);
    xy.extend_from_slice(y);
    let cxy = c.compressed_len(&xy);
    finish(cx, cy, cxy)
}

/// NCD where `C(x)` and `C(y)` have been precomputed by the caller.
///
/// Clustering evaluates O(n²) pairs over n packets; caching the n
/// single-string lengths leaves only the concatenation compression per
/// pair. `cx`/`cy` must come from the same compressor configuration as `c`.
pub fn ncd_with_lens<C: Compressor>(c: &C, x: &[u8], cx: usize, y: &[u8], cy: usize) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    let mut xy = Vec::with_capacity(x.len() + y.len());
    xy.extend_from_slice(x);
    xy.extend_from_slice(y);
    finish(cx, cy, c.compressed_len(&xy))
}

/// The NCD formula over already-measured compressed lengths: callers that
/// obtain `C(xy)` through a resumable [`crate::PrefixState`] finish the
/// distance here, with arithmetic identical to [`ncd_with_lens`].
///
/// Does **not** apply the two-empty-strings convention (`ncd` returns 0.0
/// there before measuring anything); callers replacing [`ncd_with_lens`]
/// must keep that check themselves.
pub fn ncd_from_lens(cx: usize, cy: usize, cxy: usize) -> f64 {
    finish(cx, cy, cxy)
}

fn finish(cx: usize, cy: usize, cxy: usize) -> f64 {
    let min = cx.min(cy);
    let max = cx.max(cy);
    if max == 0 {
        return 0.0;
    }
    // Clamp at 0: some compressors give C(xy) < min(C(x), C(y)) on tiny
    // inputs because of fixed framing; negative distances are meaningless.
    (cxy.saturating_sub(min)) as f64 / max as f64
}

/// A convenience wrapper binding a compressor together with a scratch-free
/// NCD entry point, used where a `Fn(&[u8], &[u8]) -> f64` shape is handy.
#[derive(Debug, Clone, Default)]
pub struct NcdComputer<C: Compressor> {
    compressor: C,
}

impl<C: Compressor> NcdComputer<C> {
    /// Wrap `compressor`.
    pub fn new(compressor: C) -> Self {
        NcdComputer { compressor }
    }

    /// The wrapped compressor.
    pub fn compressor(&self) -> &C {
        &self.compressor
    }

    /// `C(x)` for caching.
    pub fn len(&self, x: &[u8]) -> usize {
        self.compressor.compressed_len(x)
    }

    /// NCD of `x` and `y`.
    pub fn distance(&self, x: &[u8], y: &[u8]) -> f64 {
        ncd(&self.compressor, x, y)
    }

    /// NCD with cached single-string lengths.
    pub fn distance_with_lens(&self, x: &[u8], cx: usize, y: &[u8], cy: usize) -> f64 {
        ncd_with_lens(&self.compressor, x, cx, y, cy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lzss, Lzw};

    #[test]
    fn identical_strings_are_near_zero() {
        let c = Lzss::default();
        let x = b"GET /ad?androidid=f3a9c1d200b14e77&carrier=NTTDOCOMO HTTP/1.1".repeat(3);
        let d = ncd(&c, &x, &x);
        assert!(d < 0.25, "ncd(x,x) = {d}");
    }

    #[test]
    fn unrelated_strings_are_near_one() {
        let c = Lzss::default();
        // Two incompressible, unrelated buffers.
        let x: Vec<u8> = (0u32..800)
            .map(|i| (i.wrapping_mul(2654435761) >> 19) as u8)
            .collect();
        let y: Vec<u8> = (0u32..800)
            .map(|i| (i.wrapping_mul(334214467).wrapping_add(7) >> 11) as u8)
            .collect();
        let d = ncd(&c, &x, &y);
        assert!(d > 0.7, "ncd(unrelated) = {d}");
    }

    #[test]
    fn similar_beats_dissimilar() {
        let c = Lzss::default();
        let a = b"GET /getad?androidid=f3a9c1d200b14e77&carrier=NTTDOCOMO&slot=top HTTP/1.1";
        let b = b"GET /getad?androidid=99e8d7c6b5a43210&carrier=KDDI&slot=bottom HTTP/1.1";
        let z = b"POST /v2/sync/calendar/events?user=alice&tz=Asia%2FTokyo&page=4 HTTP/1.1";
        let dab = ncd(&c, a, b);
        let daz = ncd(&c, a, z);
        assert!(
            dab < daz,
            "same-template packets should be closer: {dab} vs {daz}"
        );
    }

    #[test]
    fn empty_inputs() {
        let c = Lzss::default();
        assert_eq!(ncd(&c, b"", b""), 0.0);
        let d = ncd(&c, b"", b"nonempty content here");
        assert!(d.is_finite() && d >= 0.0);
    }

    #[test]
    fn symmetry_is_approximate() {
        let c = Lzss::default();
        let x = b"imei=355195000000017&net=docomo";
        let y = b"udid=dd72cbaeab8d2e442d92e90c2e829e4b&v=2";
        let dxy = ncd(&c, x, y);
        let dyx = ncd(&c, y, x);
        assert!(
            (dxy - dyx).abs() < 0.15,
            "asymmetry too large: {dxy} vs {dyx}"
        );
    }

    #[test]
    fn cached_lengths_agree_with_direct() {
        let c = Lzss::default();
        let x = b"a=1&b=2&c=3&d=4".repeat(4);
        let y = b"a=9&b=8&c=7&d=6".repeat(4);
        let cx = c.compressed_len(&x);
        let cy = c.compressed_len(&y);
        assert_eq!(ncd(&c, &x, &y), ncd_with_lens(&c, &x, cx, &y, cy));
    }

    #[test]
    fn works_with_lzw_too() {
        let c = Lzw;
        let x = b"androidid=f3a9c1d200b14e77&carrier=NTTDOCOMO".repeat(4);
        let d_self = ncd(&c, &x, &x);
        let other: Vec<u8> = (0u32..600)
            .map(|i| (i.wrapping_mul(2654435761) >> 21) as u8)
            .collect();
        let d_other = ncd(&c, &x, &other);
        assert!(d_self < d_other, "{d_self} !< {d_other}");
    }

    #[test]
    fn computer_wrapper_matches_free_function() {
        let comp = NcdComputer::new(Lzss::default());
        let x = b"cookie: session=abc123";
        let y = b"cookie: session=def456";
        assert_eq!(comp.distance(x, y), ncd(comp.compressor(), x, y));
    }
}
