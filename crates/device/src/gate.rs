//! The packet gate: every outgoing request passes through here.
//!
//! `intercept` runs the installed signatures over the packet, consults the
//! policy engine, and either forwards, blocks, or parks the packet behind
//! a prompt. Every decision is appended to an audit log so the user can
//! review what their apps have been transmitting — the visibility the
//! paper argues Android itself does not provide.
//!
//! The gate also consults the store's [`StoreHealth`]: when the signature
//! set cannot be trusted (corrupt restore, or too many failed sync
//! generations), a configurable [`GateConfig`] decides between failing
//! *open* (keep forwarding on the last known set — availability) and
//! failing *closed* (block everything until a trusted set returns —
//! containment).

use crate::policy::{PolicyEngine, UserChoice, Verdict};
use crate::store::{SignatureStore, StoreHealth};
use leaksig_http::HttpPacket;
use parking_lot::Mutex;

/// Outcome of one interception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateAction {
    /// Sent to the network.
    Forwarded,
    /// Dropped per remembered policy.
    Blocked {
        /// Signature that fired.
        signature_id: u32,
    },
    /// Parked; the prompt id resolves it via [`PacketGate::answer`].
    PendingPrompt {
        /// Handle for answering the prompt.
        prompt_id: u64,
        /// Signature that fired.
        signature_id: u32,
    },
    /// Dropped because the signature store is in a degraded state and the
    /// gate is configured to fail closed for it (no signature matched —
    /// none could be trusted to).
    DegradedBlocked {
        /// The health state that triggered the lockdown.
        health: StoreHealth,
    },
}

/// How the gate behaves while the signature store is degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Keep enforcing with whatever is installed (availability wins).
    FailOpen,
    /// Block all traffic until the store recovers (containment wins).
    FailClosed,
}

/// Per-health-state degraded-mode policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateConfig {
    /// Staleness (in failed sync generations) at which `on_stale` kicks
    /// in; below it a stale store is treated as healthy.
    pub stale_after: u64,
    /// Behavior once staleness reaches `stale_after`.
    pub on_stale: DegradedMode,
    /// Behavior while nothing was ever installed (version 0).
    pub on_empty: DegradedMode,
    /// Behavior after a restore that found only corrupt snapshots.
    pub on_corrupt: DegradedMode,
}

impl Default for GateConfig {
    /// Defaults mirror the paper's deployment posture: an empty or
    /// merely stale store keeps the phone usable (fail open — the device
    /// simply detects less), but a corrupt store fails closed, because a
    /// detector whose state was tampered with or destroyed can no longer
    /// vouch for *anything* it forwards.
    fn default() -> Self {
        GateConfig {
            stale_after: 3,
            on_stale: DegradedMode::FailOpen,
            on_empty: DegradedMode::FailOpen,
            on_corrupt: DegradedMode::FailClosed,
        }
    }
}

impl GateConfig {
    /// The mode applying to `health`, or `None` when healthy enough.
    fn mode_for(&self, health: StoreHealth) -> Option<DegradedMode> {
        match health {
            StoreHealth::Fresh => None,
            StoreHealth::Empty => Some(self.on_empty),
            StoreHealth::Corrupt => Some(self.on_corrupt),
            StoreHealth::Stale { rounds } if rounds >= self.stale_after => Some(self.on_stale),
            StoreHealth::Stale { .. } => None,
        }
    }
}

/// One audit-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotone record sequence number.
    pub seq: u64,
    /// Package id of the sending app.
    pub app: String,
    /// Destination host (FQDN).
    pub host: String,
    /// Id of the matching signature.
    pub signature_id: Option<u32>,
    /// What the gate did (text tag).
    pub action: String,
}

/// A parked packet awaiting a user decision.
#[derive(Debug)]
struct Pending {
    prompt_id: u64,
    app: String,
    signature_id: u32,
    packet: HttpPacket,
}

/// Counters summarising gate activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Packets sent onward.
    pub forwarded: u64,
    /// Packets dropped.
    pub blocked: u64,
    /// Prompts raised.
    pub prompted: u64,
    /// Packets dropped by fail-closed degraded mode.
    pub degraded_blocked: u64,
}

/// The information-flow-control gate.
pub struct PacketGate<'a> {
    store: &'a SignatureStore,
    config: GateConfig,
    state: Mutex<GateState>,
}

#[derive(Debug, Default)]
struct GateState {
    policy: PolicyEngine,
    pending: Vec<Pending>,
    audit: Vec<AuditRecord>,
    next_prompt: u64,
    next_seq: u64,
    stats: GateStats,
}

impl<'a> PacketGate<'a> {
    /// Gate backed by the given signature store, with the default
    /// degraded-mode policy (see [`GateConfig::default`]).
    pub fn new(store: &'a SignatureStore) -> Self {
        Self::with_config(store, GateConfig::default())
    }

    /// Gate with an explicit degraded-mode policy.
    pub fn with_config(store: &'a SignatureStore, config: GateConfig) -> Self {
        PacketGate {
            store,
            config,
            state: Mutex::new(GateState::default()),
        }
    }

    /// The active degraded-mode policy.
    pub fn config(&self) -> GateConfig {
        self.config
    }

    fn log(state: &mut GateState, app: &str, host: &str, sig: Option<u32>, action: &str) {
        let seq = state.next_seq;
        state.next_seq += 1;
        state.audit.push(AuditRecord {
            seq,
            app: app.to_string(),
            host: host.to_string(),
            signature_id: sig,
            action: action.to_string(),
        });
    }

    /// Intercept an outgoing packet from `app`.
    ///
    /// When the store's health puts the gate in fail-closed degraded
    /// mode, every packet is dropped (and audited as `degraded-block`)
    /// without consulting signatures or policy — an untrusted set must
    /// not get a vote. Fail-open states fall through to normal
    /// enforcement with whatever is installed.
    pub fn intercept(&self, app: &str, packet: &HttpPacket) -> GateAction {
        let health = self.store.health();
        if self.config.mode_for(health) == Some(DegradedMode::FailClosed) {
            let mut state = self.state.lock();
            state.stats.degraded_blocked += 1;
            Self::log(
                &mut state,
                app,
                &packet.destination.host,
                None,
                "degraded-block",
            );
            return GateAction::DegradedBlocked { health };
        }
        let matched = self.store.match_packet(packet).map(|d| d.signature_id);
        let mut state = self.state.lock();
        match state.policy.decide(app, matched) {
            Verdict::Forward => {
                state.stats.forwarded += 1;
                Self::log(
                    &mut state,
                    app,
                    &packet.destination.host,
                    matched,
                    "forward",
                );
                GateAction::Forwarded
            }
            Verdict::Block => {
                let sig = matched.expect("block implies a match");
                state.stats.blocked += 1;
                Self::log(&mut state, app, &packet.destination.host, matched, "block");
                GateAction::Blocked { signature_id: sig }
            }
            Verdict::Prompt => {
                let sig = matched.expect("prompt implies a match");
                let prompt_id = state.next_prompt;
                state.next_prompt += 1;
                state.stats.prompted += 1;
                state.pending.push(Pending {
                    prompt_id,
                    app: app.to_string(),
                    signature_id: sig,
                    packet: packet.clone(),
                });
                Self::log(&mut state, app, &packet.destination.host, matched, "prompt");
                GateAction::PendingPrompt {
                    prompt_id,
                    signature_id: sig,
                }
            }
        }
    }

    /// Answer a pending prompt. Returns the parked packet when the choice
    /// forwards it, `Ok(None)` when it is dropped, `Err(())` for an
    /// unknown prompt id.
    #[allow(clippy::result_unit_err)]
    pub fn answer(&self, prompt_id: u64, choice: UserChoice) -> Result<Option<HttpPacket>, ()> {
        let mut state = self.state.lock();
        let idx = state
            .pending
            .iter()
            .position(|p| p.prompt_id == prompt_id)
            .ok_or(())?;
        let pending = state.pending.swap_remove(idx);
        let forward = state
            .policy
            .resolve(&pending.app, pending.signature_id, choice);
        let action = if forward {
            state.stats.forwarded += 1;
            "prompt-allow"
        } else {
            state.stats.blocked += 1;
            "prompt-block"
        };
        Self::log(
            &mut state,
            &pending.app,
            &pending.packet.destination.host,
            Some(pending.signature_id),
            action,
        );
        Ok(forward.then_some(pending.packet))
    }

    /// Prompts currently awaiting an answer.
    pub fn pending_prompts(&self) -> Vec<(u64, String, u32)> {
        self.state
            .lock()
            .pending
            .iter()
            .map(|p| (p.prompt_id, p.app.clone(), p.signature_id))
            .collect()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> GateStats {
        self.state.lock().stats
    }

    /// Copy of the audit log.
    pub fn audit_log(&self) -> Vec<AuditRecord> {
        self.state.lock().audit.clone()
    }

    /// Snapshot the remembered policy (see [`crate::persist`]).
    pub fn export_policy(&self) -> String {
        crate::persist::encode_policy(&self.state.lock().policy)
    }

    /// Replace the policy with a restored snapshot. Pending prompts keep
    /// their ids; a pending flow whose decision was restored resolves on
    /// its next interception, not retroactively.
    pub fn import_policy(&self, text: &str) -> Result<(), crate::persist::PersistError> {
        let policy = crate::persist::decode_policy(text)?;
        self.state.lock().policy = policy;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SignatureServer;
    use leaksig_core::prelude::*;
    use leaksig_http::RequestBuilder;
    use std::net::Ipv4Addr;

    fn leak(slot: &str) -> HttpPacket {
        RequestBuilder::get("/getad")
            .query("imei", "355195000000017")
            .query("slot", slot)
            .destination(Ipv4Addr::new(203, 0, 113, 3), 80, "ad-maker.info")
            .build()
    }

    fn clean() -> HttpPacket {
        RequestBuilder::get("/img/cat.png")
            .destination(Ipv4Addr::new(198, 51, 100, 8), 80, "cdn.example.jp")
            .build()
    }

    fn armed_store() -> SignatureStore {
        let server = SignatureServer::new();
        let (a, b) = (leak("1"), leak("2"));
        server
            .publish(&generate_signatures(&[&a, &b], &{
                let mut cfg = PipelineConfig::default();
                cfg.signature.include_singletons = false;
                cfg
            }))
            .unwrap();
        let store = SignatureStore::new();
        store.sync(&server).unwrap();
        store
    }

    #[test]
    fn clean_traffic_flows_through() {
        let store = armed_store();
        let gate = PacketGate::new(&store);
        assert_eq!(
            gate.intercept("jp.co.x.game", &clean()),
            GateAction::Forwarded
        );
        assert_eq!(gate.stats().forwarded, 1);
        assert_eq!(gate.audit_log().len(), 1);
    }

    #[test]
    fn leak_prompts_then_remembers_block() {
        let store = armed_store();
        let gate = PacketGate::new(&store);
        let action = gate.intercept("jp.co.x.game", &leak("9"));
        let GateAction::PendingPrompt {
            prompt_id,
            signature_id,
        } = action
        else {
            panic!("expected prompt, got {action:?}");
        };
        assert_eq!(gate.pending_prompts().len(), 1);

        // User blocks always: parked packet is dropped...
        assert_eq!(gate.answer(prompt_id, UserChoice::BlockAlways), Ok(None));
        assert!(gate.pending_prompts().is_empty());
        // ...and the next hit blocks without a prompt.
        assert_eq!(
            gate.intercept("jp.co.x.game", &leak("10")),
            GateAction::Blocked { signature_id }
        );
        let stats = gate.stats();
        assert_eq!(stats.prompted, 1);
        assert_eq!(stats.blocked, 2);
    }

    #[test]
    fn allow_always_releases_and_remembers() {
        let store = armed_store();
        let gate = PacketGate::new(&store);
        let GateAction::PendingPrompt { prompt_id, .. } = gate.intercept("app.x", &leak("3"))
        else {
            panic!("expected prompt");
        };
        let released = gate.answer(prompt_id, UserChoice::AllowAlways).unwrap();
        assert_eq!(released.unwrap().destination.host, "ad-maker.info");
        assert_eq!(gate.intercept("app.x", &leak("4")), GateAction::Forwarded);
    }

    #[test]
    fn decisions_are_per_app() {
        let store = armed_store();
        let gate = PacketGate::new(&store);
        let GateAction::PendingPrompt { prompt_id, .. } = gate.intercept("app.x", &leak("3"))
        else {
            panic!()
        };
        gate.answer(prompt_id, UserChoice::BlockAlways).unwrap();
        // A different app still prompts.
        assert!(matches!(
            gate.intercept("app.y", &leak("3")),
            GateAction::PendingPrompt { .. }
        ));
    }

    #[test]
    fn unknown_prompt_id_is_an_error() {
        let store = armed_store();
        let gate = PacketGate::new(&store);
        assert_eq!(gate.answer(999, UserChoice::AllowOnce), Err(()));
    }

    #[test]
    fn gate_is_thread_safe_under_concurrent_interception() {
        let store = armed_store();
        let gate = PacketGate::new(&store);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let gate = &gate;
                scope.spawn(move || {
                    for i in 0..50 {
                        let app = format!("app.t{t}");
                        match gate.intercept(&app, &leak(&i.to_string())) {
                            GateAction::PendingPrompt { prompt_id, .. } => {
                                gate.answer(prompt_id, UserChoice::BlockAlways).unwrap();
                            }
                            GateAction::Blocked { .. } => {}
                            GateAction::Forwarded => panic!("leak forwarded"),
                            GateAction::DegradedBlocked { health } => {
                                panic!("healthy store reported degraded ({health})")
                            }
                        }
                        assert_eq!(gate.intercept(&app, &clean()), GateAction::Forwarded);
                    }
                });
            }
        });
        let stats = gate.stats();
        assert_eq!(stats.forwarded, 200, "all clean traffic forwarded");
        // Per app: one prompt (then prompt-block) and 49 remembered
        // blocks — 4 prompts, 200 block outcomes in total.
        assert_eq!(stats.prompted, 4, "one prompt per app");
        assert_eq!(stats.blocked, 200, "every leak blocked");
        // One remembered decision per app (4 apps); sequence numbers in
        // the audit log are unique.
        let log = gate.audit_log();
        let mut seqs: Vec<u64> = log.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), log.len());
    }

    #[test]
    fn corrupt_store_fails_closed_by_default() {
        let store = armed_store();
        store.mark_corrupt();
        let gate = PacketGate::new(&store);
        // Even clean traffic is locked down: the detector cannot vouch
        // for anything.
        let action = gate.intercept("app.x", &clean());
        assert_eq!(
            action,
            GateAction::DegradedBlocked {
                health: crate::StoreHealth::Corrupt
            }
        );
        assert_eq!(gate.stats().degraded_blocked, 1);
        assert_eq!(gate.stats().forwarded, 0);
        let log = gate.audit_log();
        assert_eq!(log[0].action, "degraded-block");
        assert_eq!(log[0].signature_id, None);

        // Recovery: a trusted install clears the flag and traffic flows.
        let fresh = armed_store();
        store
            .install(fresh.version() + 1, &fresh.wire_text())
            .unwrap();
        assert_eq!(gate.intercept("app.x", &clean()), GateAction::Forwarded);
    }

    #[test]
    fn stale_store_fails_open_by_default_closed_when_configured() {
        let store = armed_store();
        for _ in 0..5 {
            store.note_sync_failure();
        }
        // Default: stale fails open — enforcement continues on the old set.
        let open_gate = PacketGate::new(&store);
        assert_eq!(open_gate.intercept("app.x", &clean()), GateAction::Forwarded);
        assert!(matches!(
            open_gate.intercept("app.x", &leak("1")),
            GateAction::PendingPrompt { .. }
        ));

        // Opt-in containment: stale beyond the threshold fails closed.
        let strict = GateConfig {
            stale_after: 3,
            on_stale: DegradedMode::FailClosed,
            ..GateConfig::default()
        };
        let closed_gate = PacketGate::with_config(&store, strict);
        assert_eq!(closed_gate.config().stale_after, 3);
        assert_eq!(
            closed_gate.intercept("app.x", &clean()),
            GateAction::DegradedBlocked {
                health: crate::StoreHealth::Stale { rounds: 5 }
            }
        );

        // One successful sync generation reopens the strict gate.
        store.note_sync_success();
        assert_eq!(closed_gate.intercept("app.x", &clean()), GateAction::Forwarded);
    }

    #[test]
    fn stale_below_threshold_is_healthy_enough() {
        let store = armed_store();
        store.note_sync_failure(); // 1 < default threshold of 3
        let strict = GateConfig {
            on_stale: DegradedMode::FailClosed,
            ..GateConfig::default()
        };
        let gate = PacketGate::with_config(&store, strict);
        assert_eq!(gate.intercept("app.x", &clean()), GateAction::Forwarded);
    }

    #[test]
    fn empty_store_can_be_configured_to_fail_closed() {
        let store = SignatureStore::new();
        // Default: empty fails open (fresh device keeps working).
        let gate = PacketGate::new(&store);
        assert_eq!(gate.intercept("app.x", &clean()), GateAction::Forwarded);
        // Paranoid profile: no signatures, no traffic.
        let strict = GateConfig {
            on_empty: DegradedMode::FailClosed,
            ..GateConfig::default()
        };
        let gate = PacketGate::with_config(&store, strict);
        assert!(matches!(
            gate.intercept("app.x", &clean()),
            GateAction::DegradedBlocked {
                health: crate::StoreHealth::Empty
            }
        ));
    }

    #[test]
    fn audit_log_records_the_story() {
        let store = armed_store();
        let gate = PacketGate::new(&store);
        gate.intercept("app.x", &clean());
        let GateAction::PendingPrompt { prompt_id, .. } = gate.intercept("app.x", &leak("1"))
        else {
            panic!()
        };
        gate.answer(prompt_id, UserChoice::AllowOnce).unwrap();
        let log = gate.audit_log();
        let actions: Vec<&str> = log.iter().map(|r| r.action.as_str()).collect();
        assert_eq!(actions, vec!["forward", "prompt", "prompt-allow"]);
        // Sequence numbers are strictly increasing.
        for w in log.windows(2) {
            assert!(w[1].seq > w[0].seq);
        }
    }
}
