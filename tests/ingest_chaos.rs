//! Ingestion chaos soak: the hardened raw-bytes frontier under a seeded
//! plan of malformed-traffic faults (garbage bytes, oversize
//! declarations, header bombs, duplicate floods, slow-drip truncation),
//! followed by supervised regeneration.
//!
//! The bar, per fault kind and across the soak: the server never
//! panics, every reject lands in the quarantine ledger with a stable
//! reason tag, intake counters stay mutually consistent, supervised
//! regeneration returns within its deadline, and a post-soak regenerate
//! still publishes a signature set with recall > 0.75 on held-out
//! sensitive traffic.
//!
//! Each seed drives a fully deterministic run; the matrix defaults to
//! seeds 1..=5 (what `scripts/check.sh` runs) and can be overridden
//! with `CHAOS_SEEDS=7,11,13`.

use leaksig::core::prelude::*;
use leaksig::device::{
    CollectionServer, DefaultRunner, IngestConfig, IngestOutcome, PipelineRunner,
    QuarantineReason, RateLimit, RegenerateOutcome, RegenerationSupervisor, SignatureServer,
    SignatureStore, SupervisorConfig,
};
use leaksig::faults::{apply_ingest_fault, IngestFault, IngestFaultKind, IngestFaultPlan};
use leaksig::http::{HttpPacket, RequestBuilder};
use leaksig::netsim::{Dataset, MarketConfig, SensitiveKind};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const INTENSITY: f64 = 0.3;

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(spec) => spec
            .split(',')
            .map(|t| t.trim().parse().expect("CHAOS_SEEDS must be u64s"))
            .collect(),
        Err(_) => (1..=5).collect(),
    }
}

fn module_packet(i: usize) -> HttpPacket {
    RequestBuilder::get("/getad")
        .query("imei", "355195000000017")
        .query("slot", &(i % 9).to_string())
        .query("n", &i.to_string())
        .destination(Ipv4Addr::new(203, 0, 113, 3), 80, "ad-maker.info")
        .build()
}

fn small_server(intake: IngestConfig) -> CollectionServer<&'static str> {
    CollectionServer::with_intake(
        PayloadCheck::new([("imei", "355195000000017")]),
        PipelineConfig::default(),
        64,
        7,
        intake,
    )
}

fn offer(srv: &CollectionServer<&'static str>, raw: &[u8]) -> IngestOutcome {
    srv.ingest_raw(raw, Ipv4Addr::new(203, 0, 113, 3), 80)
}

/// The full soak: mangled first half in through the raw frontier,
/// supervised regenerate, recall measured on the untouched second half,
/// then a second clean epoch to show the server is still healthy.
#[test]
fn ingest_chaos_soak_across_seeds() {
    for seed in seeds() {
        let data = Dataset::generate(MarketConfig::scaled(seed, 0.04));
        let check: PayloadCheck<SensitiveKind> = PayloadCheck::new(data.model.device.all_values());
        let collector =
            CollectionServer::with_intake(check, PipelineConfig::default(), 400, seed, IngestConfig::default());
        let publisher = SignatureServer::new();
        let store = SignatureStore::new();
        let deadline_ms = 30_000;
        let supervisor = RegenerationSupervisor::new(SupervisorConfig {
            deadline_ms,
            ..SupervisorConfig::default()
        });

        // Epoch 1: first half of the capture arrives as raw bytes, 30%
        // of the wire images mangled by the seeded fault plan.
        let half = data.packets.len() / 2;
        let mut plan = IngestFaultPlan::new(seed, &IngestFaultKind::ALL, INTENSITY);
        for p in &data.packets[..half] {
            let mut raw = p.packet.to_bytes();
            let copies = match plan.next_action() {
                Some(fault) => apply_ingest_fault(fault, &mut raw),
                None => 1,
            };
            let dst = &p.packet.destination;
            for _ in 0..copies {
                collector.ingest_raw(&raw, dst.ip, dst.port);
            }
        }
        assert!(plan.injected() > 0, "seed {seed}: the plan injected nothing");

        // Counter consistency before the queue drains: every offer is
        // accounted for, rejects match the ledger total, and nothing
        // has been classified yet beyond what was admitted.
        let s = collector.stats();
        assert!(s.raw_seen > 0, "seed {seed}");
        assert!(
            s.admitted + s.rate_limited + s.quarantined + s.shed >= s.raw_seen,
            "seed {seed}: unaccounted offers: {s:?}"
        );
        assert!(s.parse_rejects > 0, "seed {seed}: mangling produced no rejects");
        assert!(s.quarantined >= s.parse_rejects, "seed {seed}: {s:?}");
        assert!(!collector.quarantine_ledger().is_empty(), "seed {seed}");

        // Supervised regeneration publishes v1 within its deadline.
        let t0 = Instant::now();
        let outcome = supervisor.regenerate(&collector, 150, &publisher);
        let elapsed = t0.elapsed();
        assert!(
            matches!(outcome, RegenerateOutcome::Published { version: 1, .. }),
            "seed {seed}: {outcome:?}"
        );
        assert!(
            elapsed < Duration::from_millis(deadline_ms + 2_000),
            "seed {seed}: regenerate took {elapsed:?}"
        );
        let s = collector.stats();
        assert!(
            s.ingested <= s.admitted && s.ingested + s.shed >= s.admitted,
            "seed {seed}: classification drift: {s:?}"
        );
        assert!(store.sync(&publisher).expect("in-process sync"), "seed {seed}");

        // Recall on the held-out second half — traffic the server has
        // never seen, measured against ground-truth labels.
        let (mut tp, mut fns) = (0usize, 0usize);
        for p in &data.packets[half..] {
            if p.is_sensitive() {
                if store.match_packet(&p.packet).is_some() {
                    tp += 1;
                } else {
                    fns += 1;
                }
            }
        }
        let recall = tp as f64 / (tp + fns).max(1) as f64;
        assert!(
            recall > 0.75,
            "seed {seed}: post-soak recall {recall:.3} ({tp}/{})",
            tp + fns
        );

        // Epoch 2: the held-out half arrives clean; the server is not
        // degraded by the soak and publishes v2.
        for p in &data.packets[half..] {
            collector.ingest(&p.packet);
        }
        let outcome = supervisor.regenerate(&collector, 150, &publisher);
        assert!(
            matches!(outcome, RegenerateOutcome::Published { version: 2, .. }),
            "seed {seed}: {outcome:?}"
        );
        assert!(store.sync(&publisher).expect("in-process sync"), "seed {seed}");
        assert_eq!(store.version(), 2, "seed {seed}");
    }
}

#[test]
fn header_bomb_is_quarantined_with_its_own_tag() {
    let srv = small_server(IngestConfig::default());
    let mut raw = module_packet(0).to_bytes();
    apply_ingest_fault(IngestFault::HeaderBomb { headers: 1_500 }, &mut raw);
    let out = offer(&srv, &raw);
    let IngestOutcome::Quarantined(reason) = out else {
        panic!("expected quarantine, got {out:?}");
    };
    assert_eq!(reason.tag(), "header-bomb");
    assert_eq!(srv.quarantine_ledger().len(), 1);
    assert_eq!(srv.reservoir_len(), 0);
}

#[test]
fn oversize_declaration_is_rejected_up_front() {
    let srv = small_server(IngestConfig::default());
    let mut raw = module_packet(0).to_bytes();
    // Half a gigabyte is declared; the limited parser must refuse it
    // from the Content-Length header alone (nothing that size is ever
    // buffered — the wire image itself stays tiny).
    apply_ingest_fault(
        IngestFault::Oversize {
            declared: 512 * 1024 * 1024,
        },
        &mut raw,
    );
    assert!(raw.len() < 4_096, "fault must not materialize the body");
    let out = offer(&srv, &raw);
    let IngestOutcome::Quarantined(reason) = out else {
        panic!("expected quarantine, got {out:?}");
    };
    assert_eq!(reason.tag(), "body-too-large");
}

#[test]
fn garbage_bytes_fail_closed_and_deterministically() {
    for seed in 0..40u64 {
        let mut raw = module_packet(seed as usize).to_bytes();
        apply_ingest_fault(IngestFault::Garbage { seed, flips: 24 }, &mut raw);
        let a = offer(&small_server(IngestConfig::default()), &raw);
        let b = offer(&small_server(IngestConfig::default()), &raw);
        assert_eq!(a, b, "seed {seed}: same bytes, different verdict");
        if let IngestOutcome::Quarantined(reason) = &a {
            assert!(!reason.tag().is_empty());
        }
    }
}

#[test]
fn slow_drip_truncation_fails_closed_and_deterministically() {
    for keep in [0u16, 50, 300, 700, 950] {
        let mut raw = module_packet(keep as usize).to_bytes();
        apply_ingest_fault(IngestFault::SlowDrip { keep_permille: keep }, &mut raw);
        let a = offer(&small_server(IngestConfig::default()), &raw);
        let b = offer(&small_server(IngestConfig::default()), &raw);
        assert_eq!(a, b, "keep={keep}: same bytes, different verdict");
        if keep < 300 {
            // Losing most of the image cannot yield a parsed packet.
            assert!(
                matches!(a, IngestOutcome::Quarantined(_)),
                "keep={keep}: got {a:?}"
            );
        }
    }
}

#[test]
fn duplicate_flood_is_absorbed_by_the_token_bucket() {
    let srv = small_server(IngestConfig {
        rate: Some(RateLimit {
            burst: 4,
            per_second: 1,
        }),
        ..IngestConfig::default()
    });
    let raw = module_packet(0).to_bytes();
    let copies = apply_ingest_fault(IngestFault::DupFlood { copies: 8 }, &mut raw.clone());
    assert_eq!(copies, 8, "dup-flood reports its delivery count");
    for _ in 0..20 {
        offer(&srv, &raw);
    }
    let s = srv.stats();
    assert_eq!(s.admitted, 4, "only the burst gets through");
    assert_eq!(s.rate_limited, 16);
    assert_eq!(s.quarantined, 0, "rate limiting is not quarantine");
}

/// The acceptance scenario for poison isolation, end to end through the
/// public API: a packet that makes the clustering path panic is planted
/// in the reservoir; the supervisor must bisect it out, quarantine it,
/// and then publish from the cleaned reservoir — and raw re-ingests of
/// the same packet must be refused at admission.
#[test]
fn poison_packet_is_bisected_quarantined_and_blocked_from_reentry() {
    struct TrippingRunner;
    impl PipelineRunner for TrippingRunner {
        fn run(
            &self,
            sample: &[HttpPacket],
            normal: &[HttpPacket],
            config: &PipelineConfig,
        ) -> SignatureSet {
            assert!(
                !sample.iter().any(|p| p.request_line.path() == "/poison"),
                "clustering choked on the poison packet"
            );
            DefaultRunner.run(sample, normal, config)
        }
    }

    let srv = small_server(IngestConfig::default());
    for i in 0..24 {
        srv.ingest(&module_packet(i));
    }
    let poison = RequestBuilder::get("/poison")
        .query("imei", "355195000000017")
        .query("trip", "wire")
        .destination(Ipv4Addr::new(203, 0, 113, 66), 80, "poison.example")
        .build();
    srv.ingest(&poison);
    assert_eq!(srv.reservoir_len(), 25);

    let publisher = SignatureServer::new();
    let supervisor = RegenerationSupervisor::with_runner(
        SupervisorConfig {
            deadline_ms: 30_000,
            max_attempts: 3,
            max_probes: 16,
        },
        Arc::new(TrippingRunner),
    );
    let outcome = supervisor.regenerate(&srv, 64, &publisher);
    assert!(
        matches!(outcome, RegenerateOutcome::Published { version: 1, .. }),
        "publish after isolation, got {outcome:?}"
    );

    let ledger = srv.quarantine_ledger();
    let record = ledger.last().expect("poison recorded");
    assert_eq!(record.reason, QuarantineReason::Poison);
    assert!(record.summary.contains("/poison"));
    assert_eq!(srv.stats().quarantined, 1, "only the poison was quarantined");
    assert_eq!(srv.reservoir_len(), 24);

    let out = srv.ingest_raw(&poison.to_bytes(), Ipv4Addr::new(203, 0, 113, 66), 80);
    assert_eq!(
        out,
        IngestOutcome::Quarantined(QuarantineReason::PoisonReingest),
        "a quarantined packet must not re-enter through raw intake"
    );

    // The published set still detects the module's clean traffic.
    let store = SignatureStore::new();
    assert!(store.sync(&publisher).unwrap());
    assert!(store.match_packet(&module_packet(999)).is_some());
}
