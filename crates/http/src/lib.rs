#![warn(missing_docs)]
//! HTTP request model for `leaksig`.
//!
//! The paper's unit of analysis is the outgoing HTTP GET/POST request
//! ("HTTP packet"): a destination `{ip, port, host}` plus the content
//! fields the content distance is defined over — request-line, `Cookie`
//! header, and message body (§IV-B/C). This crate provides:
//!
//! * [`HttpPacket`] — the packet model, with the field accessors the
//!   distance and signature layers consume;
//! * [`parse_request`] — an RFC 7230-subset parser from raw request bytes
//!   (request line, header fields, `Content-Length`-delimited body), and
//!   [`parse_request_limited`] — the same parser behind hard
//!   [`ParseLimits`] for untrusted intake paths;
//! * [`parse_request_view`] — a zero-copy twin of
//!   [`parse_request_limited`] yielding borrowed [`PacketView`]s whose
//!   header spans live in a reusable [`ParseArena`] (hot scan paths);
//! * [`HttpPacket::to_bytes`] — the inverse serializer;
//! * [`RequestBuilder`] — ergonomic construction for generators and tests;
//! * [`query`] — `application/x-www-form-urlencoded` encode/decode.
//!
//! The parser is deliberately strict about structure (malformed packets
//! are data-quality signals in a traffic pipeline, not something to guess
//! around) but tolerant about bytes: header values and bodies are treated
//! as opaque octets.

mod builder;
mod model;
mod parse;
pub mod query;
mod view;

pub use builder::RequestBuilder;
pub use model::{Destination, HeaderName, HttpPacket, Method, RequestLine};
pub use parse::{parse_request, parse_request_limited, ParseError, ParseLimits};
pub use view::{parse_request_view, PacketView, ParseArena, ViewOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn build_serialize_parse_round_trip() {
        let pkt = RequestBuilder::get("/getad")
            .query("androidid", "f3a9c1d200b14e77")
            .query("carrier", "NTTDOCOMO")
            .header("User-Agent", "Dalvik/1.4.0")
            .cookie("session=abc123")
            .destination(Ipv4Addr::new(203, 0, 113, 7), 80, "ad-maker.info")
            .build();
        let bytes = pkt.to_bytes();
        let reparsed = parse_request(&bytes, pkt.destination.ip, pkt.destination.port).unwrap();
        assert_eq!(reparsed, pkt);
    }
}
