//! Socket-frontier throughput: concurrent clients uploading `LEAKBATCH/1`
//! batches over real loopback TCP into [`NetServer`]'s sweep loop, clean
//! vs 10% fault-injected connections — what the non-blocking event loop,
//! incremental frame reassembly, and per-record admission cost end to
//! end, and how much surviving misbehaving peers costs on top. (Stall
//! faults are excluded: they sleep by design and would time the fault,
//! not the server.) `scripts/bench.sh` runs this group and writes the
//! `BENCH_net.json` baseline from its `CRITERION_JSON` output.
//!
//! Scale knobs (smoke mode shrinks them):
//!
//! * `LEAKSIG_BENCH_NET` — records uploaded per iteration (default 4000)
//! * `LEAKSIG_BENCH_NET_CONNS` — concurrent client threads (default 4)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use leaksig_core::payload::PayloadCheck;
use leaksig_core::prelude::*;
use leaksig_device::{CollectionServer, SignatureServer};
use leaksig_faults::{SocketFaultKind, SocketFaultPlan};
use leaksig_net::{BatchRecord, NetClient, NetConfig, NetServer, NetStats};
use leaksig_netsim::{Dataset, MarketConfig, SensitiveKind};
use std::hint::black_box;
use std::sync::Arc;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Every fault kind that doesn't sleep: benchmark samples must measure
/// the server, not `SocketFault::Stall`'s deliberate silence.
const FAST_FAULTS: [SocketFaultKind; 4] = [
    SocketFaultKind::Chop,
    SocketFaultKind::Reset,
    SocketFaultKind::Garbage,
    SocketFaultKind::HalfFrame,
];

fn collector() -> Arc<CollectionServer<SensitiveKind>> {
    let market = Dataset::generate(MarketConfig::scaled(77, 0.02));
    let check: PayloadCheck<SensitiveKind> = PayloadCheck::new(market.model.device.all_values());
    Arc::new(CollectionServer::new(
        check,
        PipelineConfig::default(),
        400,
        77,
    ))
}

fn upload_batches(n: usize) -> Arc<Vec<Vec<BatchRecord>>> {
    let market = Dataset::generate(MarketConfig::scaled(77, 0.02));
    Arc::new(
        market
            .packets
            .iter()
            .cycle()
            .take(n)
            .collect::<Vec<_>>()
            .chunks(64)
            .map(|c| c.iter().map(|p| BatchRecord::from_packet(&p.packet)).collect())
            .collect(),
    )
}

/// Spawn a loopback server, hammer it from `conns` concurrent clients
/// (thread `t` takes batches `t, t+conns, t+2·conns, …` with its own
/// seeded fault plan), then shut down and return the final counters.
fn drive(
    collector: Arc<CollectionServer<SensitiveKind>>,
    batches: &Arc<Vec<Vec<BatchRecord>>>,
    conns: usize,
    kinds: &[SocketFaultKind],
    intensity: f64,
) -> NetStats {
    let publisher = Arc::new(SignatureServer::new());
    let server = NetServer::spawn(collector, publisher, "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let addr = server.addr();
    std::thread::scope(|s| {
        for t in 0..conns {
            let batches = batches.clone();
            s.spawn(move || {
                let client = NetClient::new(addr);
                let mut plan = SocketFaultPlan::new(t as u64, kinds, intensity);
                for batch in batches.iter().skip(t).step_by(conns) {
                    let fault = plan.next_action();
                    let _ = client.send_batch(batch, fault);
                }
            });
        }
    });
    server.shutdown()
}

fn bench_net(c: &mut Criterion) {
    let n = env_or("LEAKSIG_BENCH_NET", 4_000);
    let conns = env_or("LEAKSIG_BENCH_NET_CONNS", 4).max(1);
    let batches = upload_batches(n);

    // Pre-flight: the harness must both deliver batches and surface
    // faults before the comparison is worth timing. (Deterministic at
    // any scale — the 10% draw itself may fire zero times on a tiny
    // smoke run, so it is not what we assert on.)
    {
        let stats = drive(collector(), &batches, conns, &FAST_FAULTS, 0.0);
        assert_eq!(stats.batches, batches.len() as u64, "clean run lost batches: {stats:?}");
        let stats = drive(collector(), &batches, conns, &[SocketFaultKind::Garbage], 1.0);
        assert_eq!(stats.rejected, batches.len() as u64, "garbage not rejected: {stats:?}");
    }

    let mut g = c.benchmark_group("net");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);

    let mut run = |label: String, intensity: f64| {
        g.bench_function(&label, |b| {
            b.iter_batched(
                collector,
                |srv| black_box(drive(srv, &batches, conns, &FAST_FAULTS, intensity)),
                BatchSize::LargeInput,
            )
        });
    };
    run(format!("tcp_clean_{n}pkts_{conns}conns"), 0.0);
    run(format!("tcp_10pct_faulty_{n}pkts_{conns}conns"), 0.10);
    g.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
