//! Signature forensics: generate a signature set from a market sample,
//! print it in the wire format, and audit what each signature keys on —
//! identifier values, module boilerplate, or cookies.
//!
//! ```text
//! cargo run --release --example signature_audit
//! ```

use leaksig::core::prelude::*;
use leaksig::netsim::{Dataset, MarketConfig, SensitiveKind};

/// Classify a token by what it appears to capture.
fn classify(token: &[u8], values: &[(SensitiveKind, String)]) -> &'static str {
    for (kind, v) in values {
        let contains = token
            .windows(v.len().min(token.len()).max(1))
            .any(|w| w == v.as_bytes())
            || v.as_bytes().windows(token.len().max(1)).any(|w| w == token);
        if contains && token.len() >= 8 {
            return match kind {
                SensitiveKind::Carrier => "carrier name",
                SensitiveKind::AndroidIdMd5 | SensitiveKind::ImeiMd5 => "hashed identifier",
                SensitiveKind::AndroidIdSha1 | SensitiveKind::ImeiSha1 => "hashed identifier",
                _ => "raw identifier",
            };
        }
    }
    if token.starts_with(b"GET ") || token.starts_with(b"POST ") {
        "endpoint path"
    } else if token.contains(&b'=') {
        "parameter structure"
    } else {
        "other invariant"
    }
}

fn main() {
    let data = Dataset::generate(MarketConfig::scaled(4, 0.05));
    let check: PayloadCheck<SensitiveKind> = PayloadCheck::new(data.model.device.all_values());
    let sample: Vec<&leaksig::http::HttpPacket> = data
        .packets
        .iter()
        .filter(|p| check.is_suspicious(&p.packet))
        .take(120)
        .map(|p| &p.packet)
        .collect();

    let set = generate_signatures(&sample, &PipelineConfig::default());
    let values = data.model.device.all_values();

    println!("== wire format (as shipped to devices) ==\n");
    let text = encode(&set);
    for line in text.lines().take(25) {
        println!("{line}");
    }
    let total_lines = text.lines().count();
    if total_lines > 25 {
        println!("... ({} more lines)", total_lines - 25);
    }

    println!("\n== token audit ==\n");
    let mut kind_counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for sig in &set.signatures {
        for tok in &sig.tokens {
            *kind_counts
                .entry(classify(tok.bytes(), &values))
                .or_default() += 1;
        }
    }
    let total: usize = kind_counts.values().sum();
    for (class, count) in &kind_counts {
        println!(
            "  {:<22} {:>4} tokens ({:.0}%)",
            class,
            count,
            100.0 * *count as f64 / total as f64
        );
    }

    // How many signatures are anchored to an actual identifier?
    let id_anchored = set
        .signatures
        .iter()
        .filter(|s| {
            s.tokens.iter().any(|t| {
                values.iter().any(|(_, v)| {
                    t.bytes()
                        .windows(v.len().min(t.bytes().len()).max(1))
                        .any(|w| w == v.as_bytes())
                })
            })
        })
        .count();
    println!(
        "\n{} of {} signatures carry a device identifier token — the rest match module templates whose traffic always leaks",
        id_anchored,
        set.len()
    );
    assert!(!set.is_empty());
}
