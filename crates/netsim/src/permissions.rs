//! The Android permission model fragment the paper analyses (Table I).

use std::fmt;

/// The four permissions the paper's Table I tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permission {
    /// android.permission.INTERNET.
    Internet,
    /// Location access (fine or coarse).
    Location,
    /// android.permission.READ_PHONE_STATE.
    ReadPhoneState,
    /// android.permission.READ_CONTACTS.
    ReadContacts,
}

impl Permission {
    const ALL: [Permission; 4] = [
        Permission::Internet,
        Permission::Location,
        Permission::ReadPhoneState,
        Permission::ReadContacts,
    ];

    fn bit(self) -> u8 {
        match self {
            Permission::Internet => 1 << 0,
            Permission::Location => 1 << 1,
            Permission::ReadPhoneState => 1 << 2,
            Permission::ReadContacts => 1 << 3,
        }
    }

    /// The manifest constant name.
    pub fn manifest_name(self) -> &'static str {
        match self {
            Permission::Internet => "INTERNET",
            Permission::Location => "ACCESS_FINE_LOCATION",
            Permission::ReadPhoneState => "READ_PHONE_STATE",
            Permission::ReadContacts => "READ_CONTACTS",
        }
    }
}

/// A set of [`Permission`]s (bitset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PermissionSet(u8);

impl PermissionSet {
    /// The empty set.
    pub const EMPTY: PermissionSet = PermissionSet(0);

    /// Build from a list.
    pub fn of(perms: &[Permission]) -> Self {
        PermissionSet(perms.iter().fold(0, |acc, p| acc | p.bit()))
    }

    /// Set membership.
    pub fn has(self, p: Permission) -> bool {
        self.0 & p.bit() != 0
    }

    /// Add a permission.
    pub fn with(self, p: Permission) -> Self {
        PermissionSet(self.0 | p.bit())
    }

    /// Number of permissions held.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no permission is held.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The paper's "dangerous combination": network access plus at least
    /// one sensitive-information permission.
    pub fn is_dangerous_combination(self) -> bool {
        self.has(Permission::Internet)
            && (self.has(Permission::Location)
                || self.has(Permission::ReadPhoneState)
                || self.has(Permission::ReadContacts))
    }

    /// Iterate over members in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Permission> {
        Permission::ALL.into_iter().filter(move |p| self.has(*p))
    }
}

impl fmt::Display for PermissionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.iter().map(|p| p.manifest_name()).collect();
        write!(f, "{{{}}}", names.join(", "))
    }
}

/// One row of Table I: a permission combination and how many of the 1,188
/// apps request it.
#[derive(Debug, Clone, Copy)]
pub struct PermissionRow {
    /// Permission combination.
    pub set: PermissionSet,
    /// Distinct applications observed.
    pub apps: usize,
}

/// Table I as printed. The five rows sum to 955 of 1,188; the market
/// planner models the remaining 233 apps as 74 with INTERNET+CONTACTS (a
/// combination the table does not break out) and 159 with INTERNET plus
/// untracked permissions, which reconciles the paper's 25%/61% prose
/// claims exactly (see DESIGN.md and the Table I row in EXPERIMENTS.md).
pub fn table_i_rows() -> Vec<PermissionRow> {
    use Permission::*;
    vec![
        PermissionRow {
            set: PermissionSet::of(&[Internet]),
            apps: 302,
        },
        PermissionRow {
            set: PermissionSet::of(&[Internet, Location]),
            apps: 329,
        },
        PermissionRow {
            set: PermissionSet::of(&[Internet, Location, ReadPhoneState]),
            apps: 153,
        },
        PermissionRow {
            set: PermissionSet::of(&[Internet, ReadPhoneState]),
            apps: 148,
        },
        PermissionRow {
            set: PermissionSet::of(&[Internet, Location, ReadPhoneState, ReadContacts]),
            apps: 23,
        },
    ]
}

/// Total apps in the study.
pub const TOTAL_APPS: usize = 1188;

#[cfg(test)]
mod tests {
    use super::*;
    use Permission::*;

    #[test]
    fn set_operations() {
        let s = PermissionSet::of(&[Internet, ReadPhoneState]);
        assert!(s.has(Internet));
        assert!(s.has(ReadPhoneState));
        assert!(!s.has(Location));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(PermissionSet::EMPTY.is_empty());
        let s2 = s.with(Location);
        assert!(s2.has(Location));
        assert_eq!(s2.len(), 3);
    }

    #[test]
    fn dangerous_combination_definition() {
        assert!(!PermissionSet::of(&[Internet]).is_dangerous_combination());
        assert!(PermissionSet::of(&[Internet, Location]).is_dangerous_combination());
        assert!(PermissionSet::of(&[Internet, ReadContacts]).is_dangerous_combination());
        // Sensitive access without network is not a leak channel.
        assert!(!PermissionSet::of(&[ReadPhoneState]).is_dangerous_combination());
        assert!(!PermissionSet::EMPTY.is_dangerous_combination());
    }

    #[test]
    fn table_i_counts() {
        let rows = table_i_rows();
        assert_eq!(rows.len(), 5);
        let total: usize = rows.iter().map(|r| r.apps).sum();
        assert_eq!(total, 955);
        assert!(total <= TOTAL_APPS);
        // The four dangerous rows.
        let dangerous: usize = rows
            .iter()
            .filter(|r| r.set.is_dangerous_combination())
            .map(|r| r.apps)
            .sum();
        assert_eq!(dangerous, 329 + 153 + 148 + 23);
    }

    #[test]
    fn display_formats_names() {
        let s = PermissionSet::of(&[Internet, Location]);
        assert_eq!(s.to_string(), "{INTERNET, ACCESS_FINE_LOCATION}");
        assert_eq!(PermissionSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn iter_order_is_stable() {
        let s = PermissionSet::of(&[ReadContacts, Internet]);
        let v: Vec<Permission> = s.iter().collect();
        assert_eq!(v, vec![Internet, ReadContacts]);
    }
}
