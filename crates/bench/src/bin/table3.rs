//! Regenerate **Table III**: packets, applications and destinations per
//! sensitive-information type.
//!
//! Ground truth comes from the generator's labels, and is cross-checked
//! against the §IV-A payload check (the two must agree, and the binary
//! verifies that before printing).
//!
//! ```text
//! cargo run --release -p leaksig-bench --bin table3
//! ```

use leaksig_bench::{cli_config, dev, generate, rule};
use leaksig_core::payload::PayloadCheck;
use leaksig_netsim::plan::table_iii_targets;
use leaksig_netsim::{stats, SensitiveKind};

fn main() {
    let config = cli_config();
    let data = generate(config);

    // Cross-check: the payload check must reproduce the labels exactly.
    let check: PayloadCheck<SensitiveKind> = PayloadCheck::new(data.model.device.all_values());
    let mut disagreements = 0usize;
    for p in &data.packets {
        if check.is_suspicious(&p.packet) != p.is_sensitive() {
            disagreements += 1;
        }
    }
    assert_eq!(
        disagreements, 0,
        "payload check disagrees with ground truth on {disagreements} packets"
    );

    let measured = stats::per_kind(&data);
    println!("Table III — sensitive information in the trace\n");
    println!(
        "{:<22} {:>7}/{:>7} {:>6}/{:>6} {:>6}/{:>6}  {:>7}",
        "type", "pkts", "paper", "apps", "paper", "dst", "paper", "Δpkts"
    );
    rule(82);
    for (kind, pkts, apps, dests) in table_iii_targets() {
        let m = measured.iter().find(|s| s.kind == kind).unwrap();
        println!(
            "{:<22} {:>7}/{:>7} {:>6}/{:>6} {:>6}/{:>6}  {:>7}",
            kind.label(),
            m.packets,
            pkts,
            m.apps,
            apps,
            m.destinations,
            dests,
            dev(m.packets as f64, pkts as f64),
        );
    }
    rule(82);

    let sensitive = data.sensitive_count();
    println!(
        "\nsensitive packets: {} of {} ({:.1}%; paper: 23,309 of 107,859 = 21.6%)",
        sensitive,
        data.packets.len(),
        100.0 * sensitive as f64 / data.packets.len() as f64
    );
    println!("payload check needles: {}", check.needle_count());
}
