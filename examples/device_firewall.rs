//! The device side of Fig. 3b: a signature server publishes, the device
//! syncs, and the packet gate polices the traffic of three apps with the
//! user answering prompts — ending with the audit log the paper argues
//! Android should give its users.
//!
//! ```text
//! cargo run --release --example device_firewall
//! ```

use leaksig::core::prelude::*;
use leaksig::device::{GateAction, PacketGate, SignatureServer, SignatureStore, UserChoice};
use leaksig::netsim::{Dataset, MarketConfig, SensitiveKind};

fn main() {
    // Server side: generate signatures from a market sample (Fig. 3a).
    let data = Dataset::generate(MarketConfig::scaled(9, 0.05));
    let check: PayloadCheck<SensitiveKind> = PayloadCheck::new(data.model.device.all_values());
    let suspicious: Vec<&leaksig::http::HttpPacket> = data
        .packets
        .iter()
        .filter(|p| check.is_suspicious(&p.packet))
        .take(150)
        .map(|p| &p.packet)
        .collect();
    let set = generate_signatures(&suspicious, &PipelineConfig::default());
    println!(
        "server generated {} signatures from {} sampled packets",
        set.len(),
        suspicious.len()
    );

    let server = SignatureServer::new();
    server.publish(&set).expect("set passes the deploy gate");

    // Device side: sync, then gate live traffic.
    let store = SignatureStore::new();
    store.sync(&server).expect("sync");
    println!(
        "device store synced to version {} ({} signatures)\n",
        store.version(),
        store.signature_count()
    );
    let gate = PacketGate::new(&store);

    // Replay a slice of live traffic through the gate, resolving prompts
    // with a simple user model: block leaks from games, allow from the
    // weather app (the user finds its forecasts worth the tracking).
    let mut replayed = 0;
    for labeled in data.packets.iter().take(3000) {
        let app = &data.model.apps[labeled.app];
        match gate.intercept(&app.package, &labeled.packet) {
            GateAction::PendingPrompt {
                prompt_id,
                signature_id,
            } => {
                let choice = if app.package.contains("game") || app.package.contains("puzzle") {
                    UserChoice::BlockAlways
                } else {
                    UserChoice::AllowAlways
                };
                println!(
                    "PROMPT: {} matched signature {} sending to {} -> user says {:?}",
                    app.package, signature_id, labeled.packet.destination.host, choice
                );
                gate.answer(prompt_id, choice).expect("valid prompt");
            }
            GateAction::Blocked { .. }
            | GateAction::Forwarded
            | GateAction::DegradedBlocked { .. } => {}
        }
        replayed += 1;
    }

    let stats = gate.stats();
    println!("\nreplayed {replayed} packets:");
    println!("  forwarded: {}", stats.forwarded);
    println!("  blocked:   {}", stats.blocked);
    println!("  prompted:  {}", stats.prompted);

    println!("\nlast 8 audit records:");
    let log = gate.audit_log();
    for rec in log.iter().rev().take(8).rev() {
        println!(
            "  #{:<6} {:<28} -> {:<26} {:<12} sig {:?}",
            rec.seq, rec.app, rec.host, rec.action, rec.signature_id
        );
    }

    assert!(stats.prompted > 0, "expected at least one prompt");
    assert!(stats.blocked > 0, "expected remembered blocks to fire");
    println!("\nok");
}
