//! Property tests: parse/serialize round trips and codec inverses.

use leaksig_http::{parse_request, query, RequestBuilder};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn token() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.*-]{1,20}"
}

proptest! {
    /// query codec: decode(encode(x)) == x for arbitrary bytes.
    #[test]
    fn component_round_trip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let encoded = query::encode_component(&data);
        prop_assert_eq!(query::decode_component(&encoded), data);
    }

    #[test]
    fn pairs_round_trip(pairs in proptest::collection::vec((token(), token()), 0..8)) {
        let encoded = query::encode_pairs(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        let decoded = query::decode_pairs(&encoded);
        let want: Vec<(Vec<u8>, Vec<u8>)> = pairs
            .iter()
            .map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec()))
            .collect();
        prop_assert_eq!(decoded, want);
    }

    /// Build → serialize → parse is the identity on the packet model.
    #[test]
    fn packet_round_trip(
        path_seg in "[a-z0-9/]{0,20}",
        qs in proptest::collection::vec((token(), token()), 0..5),
        host in "[a-z0-9.-]{1,30}",
        // Interior spaces survive; leading/trailing whitespace is trimmed
        // by the parser (normalisation, not a bug), so anchor the ends.
        cookie in proptest::option::of("[a-zA-Z0-9=;_-]([a-zA-Z0-9=;_ -]{0,38}[a-zA-Z0-9=;_-])?"),
        body in proptest::option::of(proptest::collection::vec(any::<u8>(), 1..128)),
        post in any::<bool>(),
        ip in any::<u32>(),
        port in 1u16..,
    ) {
        let path = format!("/{path_seg}");
        let mut b = if post {
            RequestBuilder::post(&path)
        } else {
            RequestBuilder::get(&path)
        };
        for (k, v) in &qs {
            b = b.query(k, v);
        }
        if let Some(c) = &cookie {
            b = b.cookie(c);
        }
        if let Some(body) = &body {
            b = b.body(body.clone());
        }
        let ip = Ipv4Addr::from(ip);
        let pkt = b.destination(ip, port, &host).build();
        let reparsed = parse_request(&pkt.to_bytes(), ip, port).unwrap();
        prop_assert_eq!(reparsed, pkt);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_request(&raw, Ipv4Addr::LOCALHOST, 80);
    }

    /// Structured garbage (line-shaped) also never panics and errors are
    /// classified, not bogus successes with invented bodies.
    #[test]
    fn parser_linewise_garbage(lines in proptest::collection::vec("[ -~]{0,40}", 0..8)) {
        let raw = lines.join("\r\n").into_bytes();
        let _ = parse_request(&raw, Ipv4Addr::LOCALHOST, 80);
    }
}
