//! Static auditing of generated signature sets.
//!
//! §VI warns that naive generation emits signatures "that match most
//! network packets (e.g. `POST *`, `GET *`, `* HTTP/1.1`)". The
//! generation-time filters in [`crate::signature`] guard one producer,
//! but sets also arrive from the wire, from older tool versions, and from
//! hand edits — so the same invariants must be checkable on a finished
//! [`SignatureSet`] before it is accepted for deployment.
//!
//! This module holds the diagnostic vocabulary ([`Code`], [`Severity`],
//! [`Diagnostic`]) and the rules that need nothing beyond `leaksig-core`
//! itself: structural checks, shadowing/subsumption analysis,
//! corpus-based generality measurement (over a caller-supplied corpus),
//! policy cross-references, and wire round-trip fidelity. The
//! `leaksig-lint` crate layers a bundled normal-traffic corpus and
//! rendering on top; [`deploy_check`] is the gate `pipeline` and the
//! device store apply by default.

use crate::signature::{ConjunctionSignature, Field, SignatureConfig, SignatureSet};
use crate::wire;
use leaksig_http::HttpPacket;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but deployable: the set still behaves as specified.
    Warning,
    /// The set must not ship: §VI-class false-positive hazard or a
    /// structural impossibility.
    Error,
}

impl Severity {
    /// Lower-case label (`"warning"` / `"error"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes. The numeric part never changes meaning; new
/// rules append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// L001: a signature has no tokens at all (matches everything).
    EmptyTokenList,
    /// L002: a token with zero-length bytes (matches everywhere).
    ZeroLengthToken,
    /// L003: no token reaches the anchor length — the §VI `POST *`
    /// boilerplate-only hazard.
    MissingAnchor,
    /// L004: a token is a substring of protocol boilerplate.
    BoilerplateToken,
    /// L005: the signature matches a normal-traffic corpus above the
    /// false-positive threshold.
    CorpusFalsePositive,
    /// L006: two signatures carry the exact same token set.
    DuplicateTokenSet,
    /// L007: an earlier, more general signature makes this one
    /// unreachable under first-match detection.
    ShadowedSignature,
    /// L008: cookie/body token on a GET-only cluster.
    FieldTokenOnGet,
    /// L009: order hints are ambiguous or self-contradictory under
    /// [`crate::detect::MatchMode::Ordered`].
    OrderHintConflict,
    /// L010: a device policy rule references a signature id the set does
    /// not contain.
    UnknownPolicySignature,
    /// L011: encoding and re-decoding the set loses information.
    WireRoundTripLoss,
    /// L012: two signatures share an id (detections become ambiguous).
    DuplicateId,
    /// L013: duplicate token bytes within one signature's per-field
    /// token list (inflates Fraction-mode denominators, silently
    /// weakening the threshold).
    DuplicateTokenBytes,
    /// A001: the analyzer proved the signature unreachable — an earlier
    /// signature dominates it under the installed match mode.
    ProvedDead,
    /// A002: the analyzer proved the signature can never match any
    /// packet under the installed match mode.
    ProvedUnmatchable,
    /// A003: the signature's exact corpus match fraction exceeds the
    /// false-positive budget (found via the static frequency bound).
    ProvedCorpusFp,
    /// A004: the compiled set exceeds the static cost budget
    /// (automaton states or worst-case hit density).
    CostBudgetExceeded,
}

impl Code {
    /// The stable `Lnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::EmptyTokenList => "L001",
            Code::ZeroLengthToken => "L002",
            Code::MissingAnchor => "L003",
            Code::BoilerplateToken => "L004",
            Code::CorpusFalsePositive => "L005",
            Code::DuplicateTokenSet => "L006",
            Code::ShadowedSignature => "L007",
            Code::FieldTokenOnGet => "L008",
            Code::OrderHintConflict => "L009",
            Code::UnknownPolicySignature => "L010",
            Code::WireRoundTripLoss => "L011",
            Code::DuplicateId => "L012",
            Code::DuplicateTokenBytes => "L013",
            Code::ProvedDead => "A001",
            Code::ProvedUnmatchable => "A002",
            Code::ProvedCorpusFp => "A003",
            Code::CostBudgetExceeded => "A004",
        }
    }

    /// The fixed severity of this rule.
    pub fn severity(self) -> Severity {
        match self {
            Code::EmptyTokenList
            | Code::ZeroLengthToken
            | Code::MissingAnchor
            | Code::CorpusFalsePositive
            | Code::DuplicateTokenSet
            | Code::UnknownPolicySignature
            | Code::WireRoundTripLoss
            | Code::DuplicateId
            | Code::ProvedDead
            | Code::ProvedUnmatchable
            | Code::ProvedCorpusFp => Severity::Error,
            Code::BoilerplateToken
            | Code::ShadowedSignature
            | Code::FieldTokenOnGet
            | Code::OrderHintConflict
            | Code::DuplicateTokenBytes
            | Code::CostBudgetExceeded => Severity::Warning,
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The signature the finding is about, when it is about one.
    pub signature_id: Option<u32>,
    /// The content field involved, when one is.
    pub field: Option<Field>,
    /// Human-readable statement of the problem.
    pub message: String,
    /// What to do about it, when a fix is known.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A finding not tied to a specific signature.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            signature_id: None,
            field: None,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach the signature the finding is about.
    pub fn on_signature(mut self, id: u32) -> Self {
        self.signature_id = Some(id);
        self
    }

    /// Attach the content field involved.
    pub fn on_field(mut self, field: Field) -> Self {
        self.field = Some(field);
        self
    }

    /// Attach a remediation hint.
    pub fn suggest(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity.label(), self.code)?;
        if let Some(id) = self.signature_id {
            write!(f, " sig {id}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Parameters shared by the structural rules. Mirrors the generation-time
/// filters so that audit and generation agree on what "boilerplate" and
/// "anchor" mean.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Minimum anchor-token length (L003).
    pub min_anchor_len: usize,
    /// Boilerplate strings whose substrings discriminate nothing (L004).
    pub boilerplate: Vec<Vec<u8>>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig::from(&SignatureConfig::default())
    }
}

impl From<&SignatureConfig> for AuditConfig {
    fn from(cfg: &SignatureConfig) -> Self {
        AuditConfig {
            min_anchor_len: cfg.min_anchor_len,
            boilerplate: cfg.boilerplate.clone(),
        }
    }
}

fn contains_sub(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

fn display_token(bytes: &[u8]) -> String {
    format!("{:?}", String::from_utf8_lossy(bytes))
}

/// Per-signature structural findings: L001, L002, L003, L004, L008, L009.
pub fn signature_structure(
    sig: &ConjunctionSignature,
    config: &AuditConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    if sig.tokens.is_empty() {
        out.push(
            Diagnostic::new(
                Code::EmptyTokenList,
                "no tokens: the signature matches every packet",
            )
            .on_signature(sig.id)
            .suggest("regenerate from the source cluster or delete the signature"),
        );
        return out; // Nothing below applies to an empty token list.
    }

    for t in &sig.tokens {
        if t.bytes().is_empty() {
            out.push(
                Diagnostic::new(Code::ZeroLengthToken, "zero-length token matches everywhere")
                    .on_signature(sig.id)
                    .on_field(t.field)
                    .suggest("drop the token"),
            );
        }
    }

    if !sig
        .tokens
        .iter()
        .any(|t| t.bytes().len() >= config.min_anchor_len)
    {
        let longest = sig.tokens.iter().map(|t| t.bytes().len()).max().unwrap_or(0);
        out.push(
            Diagnostic::new(
                Code::MissingAnchor,
                format!(
                    "no anchor token of {} bytes or more (longest is {longest}): \
                     §VI boilerplate-only hazard",
                    config.min_anchor_len
                ),
            )
            .on_signature(sig.id)
            .suggest("regenerate from a tighter cluster or discard the signature"),
        );
    }

    for t in &sig.tokens {
        if config.boilerplate.iter().any(|b| contains_sub(b, t.bytes())) {
            out.push(
                Diagnostic::new(
                    Code::BoilerplateToken,
                    format!(
                        "token {} is protocol boilerplate and discriminates nothing",
                        display_token(t.bytes())
                    ),
                )
                .on_signature(sig.id)
                .on_field(t.field)
                .suggest("drop the token; it only costs matching time"),
            );
        }
    }

    // L008: the request-line invariant pins the cluster to GET, yet the
    // signature constrains the body — GET requests carry no body, so the
    // conjunction can never fire on the traffic the cluster came from.
    // A cookie constraint is flagged too (per-field extraction on a
    // GET-only cluster usually means the cookie is a session value that
    // rotates, not an invariant).
    let get_only = sig
        .tokens
        .iter()
        .any(|t| t.field == Field::RequestLine && t.bytes().starts_with(b"GET "));
    if get_only {
        for t in &sig.tokens {
            if t.field != Field::RequestLine {
                out.push(
                    Diagnostic::new(
                        Code::FieldTokenOnGet,
                        format!(
                            "{} token {} on a GET-only cluster",
                            t.field.tag(),
                            display_token(t.bytes())
                        ),
                    )
                    .on_signature(sig.id)
                    .on_field(t.field)
                    .suggest("verify the cluster really sends this field on GET requests"),
                );
            }
        }
    }

    // L013: the same bytes twice in one field inflate the Fraction-mode
    // denominator — a 2-of-4 threshold quietly becomes 2-of-3 effective
    // evidence, weakening the rule the operator thinks they installed.
    {
        let mut seen: std::collections::HashSet<(Field, &[u8])> = std::collections::HashSet::new();
        let mut reported: std::collections::HashSet<(Field, &[u8])> =
            std::collections::HashSet::new();
        for t in &sig.tokens {
            let key = (t.field, t.bytes());
            if !seen.insert(key) && reported.insert(key) {
                out.push(
                    Diagnostic::new(
                        Code::DuplicateTokenBytes,
                        format!(
                            "token {} appears more than once in the {} field: \
                             duplicate tokens inflate the Fraction-mode denominator",
                            display_token(t.bytes()),
                            t.field.tag()
                        ),
                    )
                    .on_signature(sig.id)
                    .on_field(t.field)
                    .suggest("deduplicate the token list; each invariant counts once"),
                );
            }
        }
    }

    // L009: under MatchMode::Ordered, per-field tokens are visited in
    // order-hint order at non-overlapping increasing positions. Equal
    // hints on distinct tokens make that order unspecified; overlapping
    // spans mean even the reference member cannot satisfy the ordering.
    for field in Field::ALL {
        let mut in_field: Vec<_> = sig.tokens.iter().filter(|t| t.field == field).collect();
        if in_field.len() < 2 {
            continue;
        }
        in_field.sort_by_key(|t| t.order_hint());
        for pair in in_field.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.order_hint() == b.order_hint() && a.bytes() != b.bytes() {
                out.push(
                    Diagnostic::new(
                        Code::OrderHintConflict,
                        format!(
                            "tokens {} and {} share order hint {}: ordered matching is ambiguous",
                            display_token(a.bytes()),
                            display_token(b.bytes()),
                            a.order_hint()
                        ),
                    )
                    .on_signature(sig.id)
                    .on_field(field)
                    .suggest("re-derive hints from the cluster's reference member"),
                );
            } else if a.order_hint() + a.bytes().len() as u32 > b.order_hint() {
                out.push(
                    Diagnostic::new(
                        Code::OrderHintConflict,
                        format!(
                            "token {} (hint {}) overlaps token {} (hint {}): \
                             ordered matching cannot be satisfied as hinted",
                            display_token(a.bytes()),
                            a.order_hint(),
                            display_token(b.bytes()),
                            b.order_hint()
                        ),
                    )
                    .on_signature(sig.id)
                    .on_field(field)
                    .suggest("re-derive hints from the cluster's reference member"),
                );
            }
        }
    }

    out
}

/// Structural findings over a whole set: every per-signature rule plus
/// L012 (duplicate ids).
pub fn structural(set: &SignatureSet, config: &AuditConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen_ids: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (i, sig) in set.signatures.iter().enumerate() {
        out.extend(signature_structure(sig, config));
        if let Some(&first) = seen_ids.get(&sig.id) {
            out.push(
                Diagnostic::new(
                    Code::DuplicateId,
                    format!(
                        "id {} already used at position {first} (this is position {i}): \
                         detections become ambiguous",
                        sig.id
                    ),
                )
                .on_signature(sig.id)
                .suggest("renumber the set; ids must be unique within a set"),
            );
        } else {
            seen_ids.insert(sig.id, i);
        }
    }
    out
}

/// Per-field token key used by the subsumption analysis.
fn token_key(sig: &ConjunctionSignature) -> Vec<(u8, Vec<u8>)> {
    let mut key: Vec<(u8, Vec<u8>)> = sig
        .tokens
        .iter()
        .map(|t| (t.field as u8, t.bytes().to_vec()))
        .collect();
    key.sort();
    key
}

/// Shadowing/subsumption findings: L006 (exact duplicates) and L007
/// (an earlier, more general signature makes a later one unreachable
/// under the detector's first-match rule).
pub fn subsumption(set: &SignatureSet) -> Vec<Diagnostic> {
    let keys: Vec<_> = set.signatures.iter().map(token_key).collect();
    let mut out = Vec::new();
    for (later, sig) in set.signatures.iter().enumerate() {
        for earlier in 0..later {
            let a = &keys[earlier]; // candidate shadow-er
            let b = &keys[later];
            if a == b {
                out.push(
                    Diagnostic::new(
                        Code::DuplicateTokenSet,
                        format!(
                            "token set identical to signature {}: dead weight",
                            set.signatures[earlier].id
                        ),
                    )
                    .on_signature(sig.id)
                    .suggest("delete the duplicate"),
                );
                break;
            }
            // `earlier` shadows `later` when each of its tokens is
            // contained in a same-field token of `later`: every packet
            // `later` matches, `earlier` already matched first.
            let implied = !a.is_empty()
                && a.iter().all(|(fa, ta)| {
                    b.iter().any(|(fb, tb)| fa == fb && contains_sub(tb, ta))
                });
            if implied {
                out.push(
                    Diagnostic::new(
                        Code::ShadowedSignature,
                        format!(
                            "unreachable under first-match detection: signature {} \
                             (earlier, more general) matches everything this one matches",
                            set.signatures[earlier].id
                        ),
                    )
                    .on_signature(sig.id)
                    .suggest("drop this signature or move it before the general one"),
                );
                break;
            }
        }
    }
    out
}

/// Generality measurement against a normal-traffic corpus (L005): a
/// signature matching more than `max_fraction` of `corpus` would fire on
/// benign traffic at that rate — the §VI false-positive hazard in its
/// measurable form.
pub fn corpus_false_positives(
    set: &SignatureSet,
    corpus: &[&HttpPacket],
    max_fraction: f64,
) -> Vec<Diagnostic> {
    if corpus.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for sig in &set.signatures {
        let hits = corpus.iter().filter(|p| sig.matches(p)).count();
        let fraction = hits as f64 / corpus.len() as f64;
        if fraction > max_fraction {
            out.push(
                Diagnostic::new(
                    Code::CorpusFalsePositive,
                    format!(
                        "matches {hits}/{} ({:.1}%) of the normal-traffic corpus \
                         (threshold {:.1}%)",
                        corpus.len(),
                        100.0 * fraction,
                        100.0 * max_fraction
                    ),
                )
                .on_signature(sig.id)
                .suggest("regenerate from a tighter cluster; the tokens are too generic"),
            );
        }
    }
    out
}

/// Cross-artifact check of device policy rows against the set (L010).
/// Rows are `(app, signature_id, allow)` as produced by the device
/// policy engine's persistence snapshot.
pub fn policy_references(
    set: &SignatureSet,
    rows: &[(String, u32, bool)],
) -> Vec<Diagnostic> {
    let known: std::collections::HashSet<u32> =
        set.signatures.iter().map(|s| s.id).collect();
    let mut out = Vec::new();
    for (app, sig_id, allow) in rows {
        if !known.contains(sig_id) {
            out.push(
                Diagnostic::new(
                    Code::UnknownPolicySignature,
                    format!(
                        "policy rule ({app}, sig {sig_id}, {}) references a signature \
                         the set does not contain",
                        if *allow { "allow" } else { "block" }
                    ),
                )
                .on_signature(*sig_id)
                .suggest("forget the stale rule or ship the referenced signature"),
            );
        }
    }
    out
}

/// Wire round-trip fidelity (L011): encoding and re-decoding the set must
/// preserve every signature, token, and host.
pub fn wire_round_trip(set: &SignatureSet) -> Vec<Diagnostic> {
    let text = wire::encode(set);
    let back = match wire::decode(&text) {
        Ok(b) => b,
        Err(e) => {
            return vec![Diagnostic::new(
                Code::WireRoundTripLoss,
                format!("the set's own encoding fails to decode: {e}"),
            )
            .suggest("the set holds content the wire format cannot carry")];
        }
    };
    let mut out = Vec::new();
    if back.len() != set.len() {
        out.push(Diagnostic::new(
            Code::WireRoundTripLoss,
            format!("{} signatures encode but {} decode", set.len(), back.len()),
        ));
        return out;
    }
    for (orig, dec) in set.signatures.iter().zip(&back.signatures) {
        let tokens_match = orig.tokens.len() == dec.tokens.len()
            && orig.tokens.iter().zip(&dec.tokens).all(|(a, b)| {
                a.field == b.field
                    && a.bytes() == b.bytes()
                    && a.order_hint() == b.order_hint()
            });
        if orig.id != dec.id || !tokens_match || orig.hosts != dec.hosts {
            out.push(
                Diagnostic::new(
                    Code::WireRoundTripLoss,
                    "signature does not survive encode/decode unchanged".to_string(),
                )
                .on_signature(orig.id)
                .suggest("hosts with whitespace and other uncodable content are lossy"),
            );
        }
    }
    out
}

/// Whether any finding is Error-level.
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

/// Proved-verdict findings from [`crate::analyze::dead_signatures`]:
/// A002 for provably-unmatchable signatures, A001 for signatures an
/// earlier signature provably dominates under `mode`. Unlike L007 this
/// carries a proof, so both are Errors.
pub fn semantic_dead(set: &SignatureSet, mode: crate::detect::MatchMode) -> Vec<Diagnostic> {
    crate::analyze::dead_signatures(set, mode)
        .into_iter()
        .map(|d| match d.reason {
            crate::analyze::DeadReason::Unmatchable { detail } => Diagnostic::new(
                Code::ProvedUnmatchable,
                format!("proved unmatchable under {mode:?}: {detail}"),
            )
            .on_signature(d.id)
            .suggest("delete the signature; it can never fire"),
            crate::analyze::DeadReason::Dominated { by_index, by_id } => Diagnostic::new(
                Code::ProvedDead,
                format!(
                    "proved dominated by signature {by_id} (position {by_index}) \
                     under {mode:?}: every packet it matches, that one matches first"
                ),
            )
            .on_signature(d.id)
            .suggest("drop the signature or reorder the set"),
        })
        .collect()
}

/// Proved corpus false positives via [`crate::analyze::fp_exposure`]:
/// A003 when a signature's *exact* corpus match fraction exceeds
/// `max_fraction` (the static frequency bound decides which signatures
/// need the exact count at all). A static, proved counterpart of L005.
pub fn corpus_fp_bounds(
    set: &SignatureSet,
    corpus: &[&HttpPacket],
    mode: crate::detect::MatchMode,
    max_fraction: f64,
) -> Vec<Diagnostic> {
    crate::analyze::fp_exposure(set, corpus, mode, max_fraction)
        .into_iter()
        .filter_map(|e| {
            let exact = e.exact?;
            (exact > max_fraction).then(|| {
                Diagnostic::new(
                    Code::ProvedCorpusFp,
                    format!(
                        "matches {:.1}% of the normal corpus under {mode:?} \
                         (static bound {:.1}%, budget {:.1}%)",
                        exact * 100.0,
                        e.bound * 100.0,
                        max_fraction * 100.0
                    ),
                )
                .on_signature(e.id)
                .suggest("tighten the tokens or regenerate from a purer cluster")
            })
        })
        .collect()
}

/// Static resource budget for a compiled set, checked by
/// [`cost_findings`].
#[derive(Debug, Clone)]
pub struct CostBudget {
    /// Maximum automaton states across all fields.
    pub max_states: usize,
    /// Maximum pattern hits a single scan position may emit.
    pub max_hits_per_position: usize,
}

impl Default for CostBudget {
    fn default() -> Self {
        CostBudget {
            max_states: 200_000,
            max_hits_per_position: 16,
        }
    }
}

/// A004 findings when a [`crate::analyze::CostReport`] exceeds `budget`.
/// Warnings, not Errors: an oversized set still detects correctly, it
/// just costs device memory and per-byte time.
pub fn cost_findings(cost: &crate::analyze::CostReport, budget: &CostBudget) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if cost.total_states > budget.max_states {
        out.push(
            Diagnostic::new(
                Code::CostBudgetExceeded,
                format!(
                    "compiled set needs {} automaton states (budget {})",
                    cost.total_states, budget.max_states
                ),
            )
            .suggest("split the set or drop low-value signatures"),
        );
    }
    if cost.worst_hits_per_position > budget.max_hits_per_position {
        out.push(
            Diagnostic::new(
                Code::CostBudgetExceeded,
                format!(
                    "worst-case {} pattern hits at one scan position (budget {})",
                    cost.worst_hits_per_position, budget.max_hits_per_position
                ),
            )
            .suggest("long shared token suffixes cause output pile-up; diversify tokens"),
        );
    }
    out
}

/// The deploy gate: the corpus-free rules (structural, subsumption, wire
/// round-trip) under default parameters, plus the analyzer's proved
/// verdicts ([`semantic_dead`] under Conjunction — A001/A002), reduced
/// to Error-level findings. `Ok(())` means the set may ship; `Err`
/// carries the blocking findings.
///
/// This is what [`crate::pipeline`] and the device store apply by
/// default. The full linter (`leaksig-lint`) additionally measures
/// corpus false positives and renders reports.
pub fn deploy_check(set: &SignatureSet) -> Result<(), Vec<Diagnostic>> {
    let config = AuditConfig::default();
    let mut errors: Vec<Diagnostic> = structural(set, &config)
        .into_iter()
        .chain(subsumption(set))
        .chain(wire_round_trip(set))
        .chain(semantic_dead(set, crate::detect::MatchMode::Conjunction))
        .filter(|d| d.severity == Severity::Error)
        .collect();
    if errors.is_empty() {
        Ok(())
    } else {
        errors.sort_by_key(|d| (d.signature_id, d.code));
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::FieldToken;

    fn sig(id: u32, tokens: Vec<FieldToken>) -> ConjunctionSignature {
        ConjunctionSignature {
            id,
            tokens,
            cluster_size: 2,
            hosts: vec!["h.example".to_string()],
        }
    }

    fn set_of(sigs: Vec<ConjunctionSignature>) -> SignatureSet {
        SignatureSet { signatures: sigs }
    }

    /// §VI regression: a `POST *`-style boilerplate-only signature is an
    /// Error and fails the deploy gate.
    #[test]
    fn post_star_is_an_error() {
        let pathological = set_of(vec![sig(
            0,
            vec![FieldToken::new(Field::RequestLine, &b"POST /x"[..])],
        )]);
        let diags = structural(&pathological, &AuditConfig::default());
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::MissingAnchor && d.severity == Severity::Error),
            "diags: {diags:?}"
        );
        let gate = deploy_check(&pathological);
        assert!(gate.is_err());
        assert!(gate
            .unwrap_err()
            .iter()
            .all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn empty_token_list_is_an_error() {
        let s = set_of(vec![sig(3, vec![])]);
        let diags = structural(&s, &AuditConfig::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::EmptyTokenList);
        assert_eq!(diags[0].signature_id, Some(3));
        assert!(deploy_check(&s).is_err());
    }

    #[test]
    fn boilerplate_token_is_a_warning() {
        let s = set_of(vec![sig(
            1,
            vec![
                FieldToken::new(Field::Body, &b"imei=355195000000017"[..]),
                FieldToken::new(Field::RequestLine, &b"ST /"[..]), // inside "POST /"
            ],
        )]);
        let diags = structural(&s, &AuditConfig::default());
        let boiler: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::BoilerplateToken)
            .collect();
        assert_eq!(boiler.len(), 1);
        assert_eq!(boiler[0].severity, Severity::Warning);
        // Warning-only sets pass the gate.
        assert!(deploy_check(&s).is_ok());
    }

    #[test]
    fn body_token_on_get_cluster_warns() {
        let s = set_of(vec![sig(
            2,
            vec![
                FieldToken::new(Field::RequestLine, &b"GET /ad?imei=355195"[..]),
                FieldToken::new(Field::Body, &b"trailing-body"[..]),
            ],
        )]);
        let diags = structural(&s, &AuditConfig::default());
        assert!(diags
            .iter()
            .any(|d| d.code == Code::FieldTokenOnGet && d.field == Some(Field::Body)));
    }

    #[test]
    fn equal_order_hints_warn() {
        let s = set_of(vec![sig(
            4,
            vec![
                FieldToken::with_hint(Field::Body, &b"alpha-alpha-alpha"[..], 5),
                FieldToken::with_hint(Field::Body, &b"beta-beta"[..], 5),
            ],
        )]);
        let diags = structural(&s, &AuditConfig::default());
        assert!(diags.iter().any(|d| d.code == Code::OrderHintConflict));
    }

    #[test]
    fn overlapping_order_hints_warn() {
        let s = set_of(vec![sig(
            4,
            vec![
                FieldToken::with_hint(Field::Body, &b"0123456789abcdef"[..], 0),
                FieldToken::with_hint(Field::Body, &b"89abcdefghij"[..], 8),
            ],
        )]);
        let diags = structural(&s, &AuditConfig::default());
        assert!(diags.iter().any(|d| d.code == Code::OrderHintConflict));
    }

    #[test]
    fn distinct_hints_do_not_warn() {
        let s = set_of(vec![sig(
            4,
            vec![
                FieldToken::with_hint(Field::Body, &b"0123456789"[..], 0),
                FieldToken::with_hint(Field::Body, &b"abcdefghij"[..], 20),
            ],
        )]);
        let diags = structural(&s, &AuditConfig::default());
        assert!(
            !diags.iter().any(|d| d.code == Code::OrderHintConflict),
            "diags: {diags:?}"
        );
    }

    #[test]
    fn duplicate_ids_are_an_error() {
        let tok = || vec![FieldToken::new(Field::Body, &b"imei=355195000000017"[..])];
        let s = set_of(vec![sig(7, tok()), sig(7, tok())]);
        let diags = structural(&s, &AuditConfig::default());
        assert!(diags.iter().any(|d| d.code == Code::DuplicateId));
        assert!(deploy_check(&s).is_err());
    }

    #[test]
    fn duplicate_token_bytes_within_one_signature_warn() {
        // Same bytes twice in one field → exactly one L013 per duplicated
        // pattern, a Warning (the set still behaves as specified under
        // Conjunction; only Fraction denominators are inflated).
        let s = sig(
            4,
            vec![
                FieldToken::new(Field::Body, &b"imei=355195000000017"[..]),
                FieldToken::new(Field::Body, &b"imei=355195000000017"[..]),
                FieldToken::new(Field::Body, &b"imei=355195000000017"[..]),
            ],
        );
        let diags = signature_structure(&s, &AuditConfig::default());
        let l013: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::DuplicateTokenBytes)
            .collect();
        assert_eq!(l013.len(), 1, "one finding per duplicated pattern: {diags:?}");
        assert_eq!(l013[0].severity, Severity::Warning);
        assert_eq!(l013[0].field, Some(Field::Body));
        // Same bytes in *different* fields are distinct invariants.
        let cross = sig(
            5,
            vec![
                FieldToken::new(Field::Body, &b"imei=355195000000017"[..]),
                FieldToken::new(Field::Cookie, &b"imei=355195000000017"[..]),
            ],
        );
        let diags = signature_structure(&cross, &AuditConfig::default());
        assert!(!diags.iter().any(|d| d.code == Code::DuplicateTokenBytes));
    }

    #[test]
    fn semantic_dead_findings_carry_proved_codes() {
        let general = sig(1, vec![FieldToken::new(Field::Body, &b"imei=355195"[..])]);
        let specific = sig(
            2,
            vec![FieldToken::new(Field::Body, &b"imei=355195000000017"[..])],
        );
        let unmatchable = sig(
            3,
            vec![FieldToken::new(
                Field::RequestLine,
                &[0xFF, b'/', b'a', b'b', b'c', b'd', b'e', b'f', b'g', b'h'][..],
            )],
        );
        let s = set_of(vec![general, specific, unmatchable]);
        let diags = semantic_dead(&s, crate::detect::MatchMode::Conjunction);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::ProvedDead && d.signature_id == Some(2)));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::ProvedUnmatchable && d.signature_id == Some(3)));
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        // The deploy gate now carries the proved verdicts.
        let gate = deploy_check(&s).unwrap_err();
        assert!(gate.iter().any(|d| d.code == Code::ProvedDead));
        assert!(gate.iter().any(|d| d.code == Code::ProvedUnmatchable));
    }

    #[test]
    fn cost_findings_respect_budget() {
        let s = set_of(vec![sig(
            1,
            vec![FieldToken::new(Field::Body, &b"imei=355195000000017"[..])],
        )]);
        let cost = crate::analyze::cost_report(&s, crate::detect::MatchMode::Conjunction);
        assert!(cost_findings(&cost, &CostBudget::default()).is_empty());
        let tiny = CostBudget {
            max_states: 1,
            max_hits_per_position: 0,
        };
        let diags = cost_findings(&cost, &tiny);
        assert_eq!(diags.len(), 2);
        assert!(diags
            .iter()
            .all(|d| d.code == Code::CostBudgetExceeded && d.severity == Severity::Warning));
    }

    #[test]
    fn corpus_fp_bounds_flag_general_signatures() {
        use leaksig_http::RequestBuilder;
        use std::net::Ipv4Addr;
        let corpus_owned: Vec<HttpPacket> = (0..20)
            .map(|i| {
                RequestBuilder::post("/app")
                    .form("lang", "en")
                    .form("slot", &i.to_string())
                    .destination(Ipv4Addr::new(10, 0, 0, 9), 80, "c.example")
                    .build()
            })
            .collect();
        let corpus: Vec<&HttpPacket> = corpus_owned.iter().collect();
        let over = sig(1, vec![FieldToken::new(Field::Body, &b"lang=en"[..])]);
        let under = sig(
            2,
            vec![FieldToken::new(Field::Body, &b"imei=355195000000017"[..])],
        );
        let s = set_of(vec![over, under]);
        let diags = corpus_fp_bounds(&s, &corpus, crate::detect::MatchMode::Conjunction, 0.05);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::ProvedCorpusFp);
        assert_eq!(diags[0].signature_id, Some(1));
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn exact_duplicate_token_sets_are_an_error() {
        let tok = || vec![FieldToken::new(Field::Body, &b"udid=dd72cbaeab8d2e44"[..])];
        let s = set_of(vec![sig(1, tok()), sig(2, tok())]);
        let diags = subsumption(&s);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::DuplicateTokenSet);
        assert_eq!(diags[0].signature_id, Some(2), "the later one is flagged");
        assert!(deploy_check(&s).is_err());
    }

    /// The acceptance-criteria shadowing case: an earlier signature whose
    /// single token is contained in the later one's token makes the later
    /// one unreachable.
    #[test]
    fn earlier_general_signature_shadows_later_specific_one() {
        let general = sig(
            10,
            vec![FieldToken::new(Field::Body, &b"imei=355195"[..])],
        );
        let specific = sig(
            11,
            vec![
                FieldToken::new(Field::Body, &b"imei=355195000000017"[..]),
                FieldToken::new(Field::Cookie, &b"sid=abcdef"[..]),
            ],
        );
        let s = set_of(vec![general, specific]);
        let diags = subsumption(&s);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::ShadowedSignature);
        assert_eq!(diags[0].signature_id, Some(11));
        assert_eq!(diags[0].severity, Severity::Warning);

        // Reversed order: the specific one runs first, nothing shadowed.
        let s = set_of(vec![
            sig(11, vec![
                FieldToken::new(Field::Body, &b"imei=355195000000017"[..]),
                FieldToken::new(Field::Cookie, &b"sid=abcdef"[..]),
            ]),
            sig(10, vec![FieldToken::new(Field::Body, &b"imei=355195"[..])]),
        ]);
        assert!(subsumption(&s).is_empty());
    }

    #[test]
    fn cross_field_containment_does_not_shadow() {
        // Same bytes, different field: no implication.
        let s = set_of(vec![
            sig(0, vec![FieldToken::new(Field::Cookie, &b"imei=355195"[..])]),
            sig(1, vec![FieldToken::new(Field::Body, &b"imei=355195000000017"[..])]),
        ]);
        assert!(subsumption(&s).is_empty());
    }

    #[test]
    fn corpus_rule_flags_generic_signatures() {
        use leaksig_http::RequestBuilder;
        use std::net::Ipv4Addr;
        let corpus: Vec<HttpPacket> = (0..40)
            .map(|i| {
                RequestBuilder::get("/api/v1/items")
                    .query("page", &i.to_string())
                    .destination(Ipv4Addr::LOCALHOST, 80, "api.example.jp")
                    .build()
            })
            .collect();
        let refs: Vec<&HttpPacket> = corpus.iter().collect();
        let generic = set_of(vec![sig(
            0,
            vec![FieldToken::new(Field::RequestLine, &b"/api/v1/items"[..])],
        )]);
        let diags = corpus_false_positives(&generic, &refs, 0.05);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::CorpusFalsePositive);
        assert_eq!(diags[0].severity, Severity::Error);

        // A specific signature passes.
        let specific = set_of(vec![sig(
            0,
            vec![FieldToken::new(Field::Body, &b"udid=dd72cbaeab8d2e44"[..])],
        )]);
        assert!(corpus_false_positives(&specific, &refs, 0.05).is_empty());
        // Empty corpus: no findings, no division by zero.
        assert!(corpus_false_positives(&generic, &[], 0.05).is_empty());
    }

    #[test]
    fn policy_rule_must_reference_known_ids() {
        let s = set_of(vec![sig(
            5,
            vec![FieldToken::new(Field::Body, &b"imei=355195000000017"[..])],
        )]);
        let rows = vec![
            ("jp.co.x.game".to_string(), 5, true),
            ("jp.co.x.game".to_string(), 99, false),
        ];
        let diags = policy_references(&s, &rows);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::UnknownPolicySignature);
        assert_eq!(diags[0].signature_id, Some(99));
        assert!(diags[0].message.contains("jp.co.x.game"));
    }

    #[test]
    fn wire_round_trip_clean_set_is_silent() {
        let s = set_of(vec![sig(
            5,
            vec![FieldToken::with_hint(Field::Body, &b"imei=355195000000017"[..], 9)],
        )]);
        assert!(wire_round_trip(&s).is_empty());
    }

    #[test]
    fn wire_round_trip_flags_uncodable_hosts() {
        let mut lossy = sig(
            5,
            vec![FieldToken::new(Field::Body, &b"imei=355195000000017"[..])],
        );
        lossy.hosts = vec!["two words".to_string()];
        let diags = wire_round_trip(&set_of(vec![lossy]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::WireRoundTripLoss);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::new(Code::MissingAnchor, "msg").on_signature(4);
        assert_eq!(d.to_string(), "error[L003] sig 4: msg");
        assert_eq!(Code::ShadowedSignature.to_string(), "L007");
        assert_eq!(Severity::Warning.label(), "warning");
        assert!(!has_errors(&[Diagnostic::new(Code::BoilerplateToken, "x")]));
        assert!(has_errors(&[Diagnostic::new(Code::DuplicateId, "x")]));
    }
}
