#![warn(missing_docs)]
//! `leaksig-core` — the paper's contribution: HTTP-packet distances,
//! group-average hierarchical clustering, conjunction-signature
//! generation, and signature-based detection of sensitive-information
//! leakage (Kuzuno & Tonami, "Signature Generation for Sensitive
//! Information Leakage in Android Applications", 2013).
//!
//! The pieces, bottom-up:
//!
//! * [`distance`] — the packet distance `d_pkt = d_dst + d_header`
//!   (§IV-B/C): IP-prefix, port, and host-edit-distance components plus
//!   the normalized compression distance over request-line, cookie, and
//!   body. Both the corrected and the paper-literal conventions are
//!   implemented (see the module docs for why they differ).
//! * [`matrix`] — parallel condensed pairwise distance matrices.
//! * [`cluster`] — group-average (UPGMA) agglomerative clustering with
//!   dendrogram cuts (§IV-D).
//! * [`payload`] — the payload check separating suspicious from normal
//!   traffic (§IV-A), built on Boyer–Moore–Horspool needles.
//! * [`signature`] — conjunction signatures: per-field invariant tokens
//!   with boilerplate filtering (§IV-E, §VI).
//! * [`wire`] — the versioned text format signatures ship in (Fig. 3).
//! * [`audit`] — static auditing of finished sets: the diagnostic
//!   vocabulary and the deploy gate (§VI's hazards, re-checked at the
//!   deployment boundary; `leaksig-lint` builds on it).
//! * [`analyze`] — whole-set semantic analysis: proved subsumption
//!   lattice per [`detect::MatchMode`], dead-signature detection with
//!   witness traces, generation diffs, and static cost / FP-exposure
//!   bounds (the proved counterpart of [`audit`]'s heuristics).
//! * [`engine`] — the compiled detection engine: per-field multi-pattern
//!   token automata + counting conjunction evaluation (one linear pass
//!   per packet evaluates every signature).
//! * [`detect`] — the high-volume matcher, driving [`engine`] and fanning
//!   batch scans across cores.
//! * [`eval`] — the paper's TP/FN/FP formulas (§V-B).
//! * [`quality`] — cluster purity / Rand index (tuning diagnostics).
//! * [`bayes`] — Polygraph-class Bayes (token-scoring) signatures, an
//!   extension the paper's §VI points toward.
//! * [`pipeline`] — the end-to-end experiment: sample → cluster →
//!   generate → detect → evaluate.
//!
//! ```
//! use leaksig_core::prelude::*;
//! use leaksig_http::RequestBuilder;
//! use std::net::Ipv4Addr;
//!
//! // Two requests from the same ad module, leaking the same IMEI.
//! let mk = |slot: &str| {
//!     RequestBuilder::get("/getad")
//!         .query("imei", "355195000000017")
//!         .query("slot", slot)
//!         .destination(Ipv4Addr::new(203, 0, 113, 2), 80, "ad-maker.info")
//!         .build()
//! };
//! let (a, b) = (mk("1"), mk("2"));
//! let set = generate_signatures(&[&a, &b], &PipelineConfig::default());
//! let detector = Detector::new(set);
//! assert!(detector.match_packet(&mk("42")).is_some());
//! ```

pub mod analyze;
pub mod audit;
pub mod bayes;
pub mod cluster;
pub mod detect;
pub mod engine;
pub mod distance;
pub mod eval;
pub mod matrix;
pub mod payload;
pub mod pipeline;
pub mod quality;
pub mod signature;
pub mod wire;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::analyze::{
        analyze_set, dead_signatures, diff_generations, dominates, drop_dead, fp_exposure,
        prove_dominates, set_matches, ChangeKind, CostReport, DeadReason, DeadSignature,
        Dominance, DominanceProof, FpExposure, GenerationDiff, SetAnalysis, Witness,
    };
    pub use crate::audit::{deploy_check, AuditConfig, Code, Diagnostic, Severity};
    pub use crate::bayes::{BayesConfig, BayesSignature};
    pub use crate::cluster::{
        agglomerate, agglomerate_legacy_with, agglomerate_with, Dendrogram, Linkage, Merge,
    };
    pub use crate::detect::{
        Detection, Detector, Explanation, MatchMode, PacketScanner, RawPacket, ScanVerdict,
    };
    pub use crate::engine::{
        CompiledDetector, EngineVerdict, FieldBytes, ScanScratch, SensitiveProbe,
    };
    pub use crate::distance::{DistanceConfig, DistanceConvention, PacketDistance, PacketFeatures};
    pub use crate::eval::{tally, Counts, Rates};
    pub use crate::matrix::{pairwise, pairwise_naive, CondensedMatrix};
    pub use crate::payload::{Needle, PayloadCheck};
    pub use crate::pipeline::{
        drop_dominated, generate_signatures, generate_signatures_counted,
        generate_signatures_with, prune_against_normal, regeneration_pass, run_experiment,
        run_experiment_refs, take_last_timings, ClusterSelection, ExperimentOutcome,
        FpValidation, GeneratedSignatures, PipelineConfig, StageTimings,
    };
    pub use crate::signature::{
        signature_from_cluster, ConjunctionSignature, Field, FieldToken, SignatureConfig,
        SignatureSet,
    };
    pub use crate::wire::{
        decode, encode, frame, unframe, unframe_partial, FrameError, FrameProgress, WireError,
        MAX_FRAME_HEADER,
    };
}
