//! The declarative market plan: every constant the paper publishes, plus
//! the calibrated synthesis constants that make the generated dataset's
//! marginals land on the published tables.
//!
//! The market planner (`crate::MarketModel::build`) consumes this plan;
//! the trace generator (`crate::Dataset`) renders it into packets. Calibration
//! rationale (how the minor-domain counts were derived from Table III) is
//! documented in DESIGN.md §2 and EXPERIMENTS.md.

use crate::device::SensitiveKind;

/// Which app pool a domain draws its users from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppPool {
    /// Any app holding INTERNET.
    Any,
    /// Apps in the leak group of the given kind (see
    /// [`group_sizes`]). Membership implies the permissions that kind
    /// needs.
    Group(SensitiveKind),
}

/// How packets for a domain are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficStyle {
    /// Advertisement request: GET with a dense query string (or POST form),
    /// identifier parameters, SDK boilerplate.
    Ad,
    /// Analytics beacon: POST form with event counters.
    Analytics,
    /// Static content fetch: GET for images/resources, no parameters.
    Content,
    /// Web API: GET/POST with application-level parameters.
    Api,
}

/// One planned destination domain.
#[derive(Debug, Clone)]
pub struct DomainPlan {
    /// FQDN used as the HTTP `Host`.
    pub host: String,
    /// Total packets this domain must receive.
    pub packets: usize,
    /// App quota per pool; the sum is the domain's distinct-app count.
    pub sources: Vec<(AppPool, usize)>,
    /// Traffic rendering style.
    pub style: TrafficStyle,
    /// Sensitive kinds this domain's module transmits — emitted on a
    /// packet only when the sending app belongs to that kind's group.
    pub leaks: Vec<SensitiveKind>,
    /// Whether the domain is one of the 26 rows of Table II.
    pub listed: bool,
}

impl DomainPlan {
    fn new(
        host: &str,
        packets: usize,
        sources: Vec<(AppPool, usize)>,
        style: TrafficStyle,
        leaks: Vec<SensitiveKind>,
        listed: bool,
    ) -> Self {
        DomainPlan {
            host: host.to_string(),
            packets,
            sources,
            style,
            leaks,
            listed,
        }
    }

    /// Total distinct apps this domain serves.
    pub fn app_quota(&self) -> usize {
        self.sources.iter().map(|(_, n)| n).sum()
    }
}

/// Published dataset totals.
pub const TOTAL_PACKETS: usize = 107_859;
/// Published count of packets containing sensitive information.
pub const SENSITIVE_PACKETS: usize = 23_309;

/// Table III app-group sizes: how many apps transmit each kind.
pub fn group_sizes() -> Vec<(SensitiveKind, usize)> {
    use SensitiveKind::*;
    vec![
        (AndroidId, 21),
        (AndroidIdMd5, 433),
        (AndroidIdSha1, 47),
        (Carrier, 135),
        (Imei, 171),
        (ImeiMd5, 59),
        (ImeiSha1, 51),
        (Imsi, 16),
        (SimSerial, 13),
    ]
}

/// Table III packet counts per kind (calibration targets, re-printed by
/// the `table3` bench binary).
pub fn table_iii_targets() -> Vec<(SensitiveKind, usize, usize, usize)> {
    use SensitiveKind::*;
    // (kind, packets, apps, destinations)
    vec![
        (AndroidId, 7590, 21, 75),
        (AndroidIdMd5, 10058, 433, 21),
        (AndroidIdSha1, 1247, 47, 12),
        (Carrier, 2095, 135, 44),
        (Imei, 3331, 171, 94),
        (ImeiMd5, 692, 59, 15),
        (ImeiSha1, 1062, 51, 13),
        (Imsi, 655, 16, 22),
        (SimSerial, 369, 13, 18),
    ]
}

/// Table II as printed: (host, packets, apps).
pub fn table_ii_rows() -> Vec<(&'static str, usize, usize)> {
    vec![
        ("doubleclick.net", 5786, 407),
        ("admob.com", 1299, 401),
        ("google-analytics.com", 3098, 353),
        ("gstatic.com", 1387, 333),
        ("google.com", 3604, 308),
        ("yahoo.co.jp", 1756, 287),
        ("ggpht.com", 940, 281),
        ("googlesyndication.com", 938, 244),
        ("ad-maker.info", 3391, 195),
        ("nend.net", 1368, 192),
        ("mydas.mobi", 332, 164),
        ("amoad.com", 583, 116),
        ("flurry.com", 335, 119),
        ("microad.jp", 868, 103),
        ("adwhirl.com", 548, 102),
        ("i-mobile.co.jp", 3729, 100),
        ("adlantis.jp", 237, 98),
        ("naver.jp", 3390, 82),
        ("adimg.net", 315, 72),
        ("mbga.jp", 1048, 63),
        ("rakuten.co.jp", 502, 56),
        ("fc2.com", 163, 52),
        ("medibaad.com", 1162, 49),
        ("mediba.jp", 427, 48),
        ("mobclix.com", 260, 48),
        ("gree.jp", 228, 45),
    ]
}

/// A group of synthesized minor domains sharing a leak profile.
#[derive(Debug, Clone)]
pub struct MinorGroupPlan {
    /// Diagnostic name.
    pub name: &'static str,
    /// How many domains to synthesize.
    pub domains: usize,
    /// Total packets across the group (split pseudo-randomly per domain).
    pub packets: usize,
    /// Which group the apps come from, and how many apps per domain
    /// (inclusive range).
    pub pool: SensitiveKind,
    /// Apps per synthesized domain (inclusive range).
    pub apps_per_domain: (usize, usize),
    /// Sensitive kinds transmitted (same group-membership gating as
    /// [`DomainPlan::leaks`]).
    pub leaks: Vec<SensitiveKind>,
}

/// The full market plan.
#[derive(Debug, Clone)]
pub struct MarketPlan {
    /// Master seed.
    pub seed: u64,
    /// Table II domains with exact quotas.
    pub majors: Vec<DomainPlan>,
    /// Synthesized minor-domain groups.
    pub minors: Vec<MinorGroupPlan>,
}

impl MarketPlan {
    /// The calibrated paper-scale plan.
    ///
    /// Calibration sketch (see EXPERIMENTS.md for the full derivation):
    /// every Table II row becomes a major domain with its exact packet and
    /// app quota; Table III destination counts are met by synthesizing
    /// minor leak domains (Table II is a "most common destinations" list,
    /// so the long tail is where most leak *destinations* live); Table III
    /// packet counts are met by splitting each kind's packet budget
    /// between the major domains the paper names for it and the minors.
    pub fn paper(seed: u64) -> Self {
        use SensitiveKind::*;
        use TrafficStyle::*;
        let any = |n: usize| vec![(AppPool::Any, n)];

        let majors = vec![
            DomainPlan::new("doubleclick.net", 5786, any(407), Ad, vec![], true),
            DomainPlan::new(
                "admob.com",
                1299,
                vec![(AppPool::Group(AndroidIdMd5), 401)],
                Ad,
                vec![AndroidIdMd5],
                true,
            ),
            DomainPlan::new(
                "google-analytics.com",
                3098,
                any(353),
                Analytics,
                vec![],
                true,
            ),
            DomainPlan::new("gstatic.com", 1387, any(333), Content, vec![], true),
            DomainPlan::new("google.com", 3604, any(308), Api, vec![], true),
            DomainPlan::new("yahoo.co.jp", 1756, any(287), Content, vec![], true),
            DomainPlan::new("ggpht.com", 940, any(281), Content, vec![], true),
            DomainPlan::new(
                "googlesyndication.com",
                938,
                vec![(AppPool::Group(AndroidIdMd5), 244)],
                Ad,
                vec![AndroidIdMd5],
                true,
            ),
            // The paper: "ad-maker.info, mydas.mobi, medibaad.com and
            // adlantis.jp expect IMEI and Android ID".
            DomainPlan::new(
                "ad-maker.info",
                3391,
                vec![
                    (AppPool::Group(Imei), 53),
                    (AppPool::Group(AndroidId), 10),
                    (AppPool::Any, 132),
                ],
                Ad,
                vec![Imei, AndroidId],
                true,
            ),
            DomainPlan::new("nend.net", 1368, any(192), Ad, vec![], true),
            DomainPlan::new(
                "mydas.mobi",
                332,
                vec![
                    (AppPool::Group(Imei), 40),
                    (AppPool::Group(AndroidId), 6),
                    (AppPool::Any, 118),
                ],
                Ad,
                vec![Imei, AndroidId],
                true,
            ),
            DomainPlan::new("amoad.com", 583, any(116), Ad, vec![], true),
            DomainPlan::new("flurry.com", 335, any(119), Analytics, vec![], true),
            DomainPlan::new("microad.jp", 868, any(103), Ad, vec![], true),
            DomainPlan::new("adwhirl.com", 548, any(102), Ad, vec![], true),
            DomainPlan::new("i-mobile.co.jp", 3729, any(100), Ad, vec![], true),
            DomainPlan::new(
                "adlantis.jp",
                237,
                vec![
                    (AppPool::Group(Imei), 23),
                    (AppPool::Group(AndroidId), 6),
                    (AppPool::Any, 69),
                ],
                Ad,
                vec![Imei, AndroidId],
                true,
            ),
            DomainPlan::new("naver.jp", 3390, any(82), Api, vec![], true),
            DomainPlan::new("adimg.net", 315, any(72), Content, vec![], true),
            DomainPlan::new("mbga.jp", 1048, any(63), Api, vec![], true),
            DomainPlan::new("rakuten.co.jp", 502, any(56), Api, vec![], true),
            DomainPlan::new("fc2.com", 163, any(52), Content, vec![], true),
            DomainPlan::new(
                "medibaad.com",
                1162,
                vec![
                    (AppPool::Group(Imei), 11),
                    (AppPool::Group(AndroidId), 5),
                    (AppPool::Any, 33),
                ],
                Ad,
                vec![Imei, AndroidId],
                true,
            ),
            DomainPlan::new("mediba.jp", 427, any(48), Content, vec![], true),
            DomainPlan::new("mobclix.com", 260, any(48), Ad, vec![], true),
            DomainPlan::new("gree.jp", 228, any(45), Api, vec![], true),
        ];

        // Minor-domain calibration (targets in comments are Table III):
        //   AndroidIdMd5 dests 21 = admob + googlesyndication + 19 minors;
        //     packets 10058 - 1299 - 938 = 7821 on the minors.
        //   AndroidId    dests 75 = 4 majors + 71 minors; major packets
        //     ~320 (group share of the four IMEI+AID domains) -> 7270.
        //   Imei packets 3331 = ~1573 (majors) + 734 (own minors)
        //     + 655 (IMSI minors co-send) + 369 (SIM minors co-send);
        //     dests 94 = 4 + 50 + 22 + 18.
        //   Carrier packets 2095 ~= 369 (SIM minors) + ~1626 (AidMd5
        //     minors x the 90/433 carrier-group overlap) + 105 (own);
        //     dests 44 = 18 + 19 + 7.
        let minors = vec![
            MinorGroupPlan {
                name: "aid-md5",
                domains: 19,
                packets: 7821,
                pool: AndroidIdMd5,
                apps_per_domain: (20, 50),
                leaks: vec![AndroidIdMd5, Carrier],
            },
            MinorGroupPlan {
                name: "aid-plain",
                domains: 71,
                packets: 7270,
                pool: AndroidId,
                apps_per_domain: (2, 4),
                leaks: vec![AndroidId],
            },
            MinorGroupPlan {
                name: "imei",
                domains: 50,
                packets: 734,
                pool: Imei,
                apps_per_domain: (2, 3),
                leaks: vec![Imei],
            },
            MinorGroupPlan {
                name: "imei-md5",
                domains: 15,
                packets: 692,
                pool: ImeiMd5,
                apps_per_domain: (3, 6),
                leaks: vec![ImeiMd5],
            },
            MinorGroupPlan {
                name: "imei-sha1",
                domains: 13,
                packets: 1062,
                pool: ImeiSha1,
                apps_per_domain: (3, 6),
                leaks: vec![ImeiSha1],
            },
            MinorGroupPlan {
                name: "aid-sha1",
                domains: 12,
                packets: 1247,
                pool: AndroidIdSha1,
                apps_per_domain: (4, 8),
                leaks: vec![AndroidIdSha1],
            },
            MinorGroupPlan {
                name: "imsi",
                domains: 22,
                packets: 655,
                pool: Imsi,
                apps_per_domain: (2, 3),
                leaks: vec![Imsi, Imei],
            },
            // The paper: "zqapk.com expects IMEI, SIM Serial ID and
            // Carrier name" — the whole SIM group behaves like that.
            MinorGroupPlan {
                name: "sim",
                domains: 18,
                packets: 369,
                pool: SimSerial,
                apps_per_domain: (2, 3),
                leaks: vec![SimSerial, Imei, Carrier],
            },
            MinorGroupPlan {
                name: "carrier",
                domains: 7,
                packets: 140,
                pool: Carrier,
                apps_per_domain: (5, 8),
                leaks: vec![Carrier],
            },
        ];

        MarketPlan {
            seed,
            majors,
            minors,
        }
    }

    /// Packets promised to majors + minors; the filler layer tops the
    /// trace up to [`TOTAL_PACKETS`].
    pub fn planned_packets(&self) -> usize {
        self.majors.iter().map(|d| d.packets).sum::<usize>()
            + self.minors.iter().map(|g| g.packets).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn major_quotas_match_table_ii() {
        let plan = MarketPlan::paper(1);
        let rows = table_ii_rows();
        assert_eq!(plan.majors.len(), rows.len());
        for ((host, packets, apps), d) in rows.iter().zip(&plan.majors) {
            assert_eq!(&d.host, host);
            assert_eq!(d.packets, *packets, "{host}");
            assert_eq!(d.app_quota(), *apps, "{host}");
            assert!(d.listed);
        }
    }

    #[test]
    fn planned_packets_leave_room_for_filler() {
        let plan = MarketPlan::paper(1);
        let planned = plan.planned_packets();
        assert!(planned < TOTAL_PACKETS, "planned {planned}");
        // Filler must be a substantial share (long-tail realism).
        assert!(TOTAL_PACKETS - planned > 30_000);
    }

    #[test]
    fn destination_counts_per_kind_match_table_iii() {
        use crate::device::SensitiveKind;
        let plan = MarketPlan::paper(1);
        for (kind, _pkts, _apps, dests) in table_iii_targets() {
            let majors = plan
                .majors
                .iter()
                .filter(|d| d.leaks.contains(&kind))
                .count();
            let minors: usize = plan
                .minors
                .iter()
                .filter(|g| g.leaks.contains(&kind))
                .map(|g| g.domains)
                .sum();
            assert_eq!(majors + minors, dests, "{:?}", kind as SensitiveKind);
        }
    }

    #[test]
    fn md5_packet_budget_is_exact() {
        let plan = MarketPlan::paper(1);
        let majors: usize = plan
            .majors
            .iter()
            .filter(|d| d.leaks.contains(&SensitiveKind::AndroidIdMd5))
            .map(|d| d.packets)
            .sum();
        let minors: usize = plan
            .minors
            .iter()
            .filter(|g| g.pool == SensitiveKind::AndroidIdMd5)
            .map(|g| g.packets)
            .sum();
        assert_eq!(majors + minors, 10058);
    }
}
