//! The payload check (§IV-A): separating traffic into the suspicious
//! group (packets containing sensitive information) and the normal group.
//!
//! The check scans raw request bytes for a set of needles — the device's
//! identifier strings and their MD5/SHA-1 hex digests. Because HTTP
//! transports values form-urlencoded, each needle is also matched in its
//! encoded form (`NTT DOCOMO` → `NTT+DOCOMO`); hex digests and numeric
//! identifiers are encoding-invariant but carrier names are not.
//!
//! Matching uses Boyer–Moore–Horspool with precomputed skip tables: the
//! check runs over the whole 107k-packet dataset, so the naive scan's
//! constant factor matters.

use leaksig_http::{query, HttpPacket};

/// A compiled search needle (Boyer–Moore–Horspool).
#[derive(Debug, Clone)]
pub struct Needle {
    pattern: Vec<u8>,
    /// Shift per trailing byte value.
    skip: [u8; 256],
}

impl Needle {
    /// Compile a needle. Patterns longer than 255 bytes would truncate the
    /// skip table; identifiers are all far shorter.
    pub fn new(pattern: impl Into<Vec<u8>>) -> Self {
        let pattern = pattern.into();
        assert!(!pattern.is_empty(), "empty needle");
        assert!(pattern.len() < 256, "needle too long for BMH skip table");
        let m = pattern.len();
        let mut skip = [m as u8; 256];
        for (i, &b) in pattern[..m - 1].iter().enumerate() {
            skip[b as usize] = (m - 1 - i) as u8;
        }
        Needle { pattern, skip }
    }

    /// The raw pattern bytes.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// Whether `haystack` contains the pattern.
    pub fn is_in(&self, haystack: &[u8]) -> bool {
        let m = self.pattern.len();
        let n = haystack.len();
        if m > n {
            return false;
        }
        let mut i = 0usize;
        while i + m <= n {
            if haystack[i..i + m] == self.pattern[..] {
                return true;
            }
            i += self.skip[haystack[i + m - 1] as usize] as usize;
        }
        false
    }
}

/// A labelled needle set: each entry carries an opaque tag `T` returned on
/// match (the netsim `SensitiveKind` in the pipeline, anything else for
/// custom deployments).
#[derive(Debug, Clone)]
pub struct PayloadCheck<T> {
    needles: Vec<(T, Needle)>,
}

impl<T: Copy + Eq> PayloadCheck<T> {
    /// Build from `(tag, value)` pairs. Each value is compiled both raw
    /// and form-urlencoded (when the encodings differ).
    pub fn new<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = (T, V)>,
        V: AsRef<[u8]>,
    {
        let mut needles = Vec::new();
        for (tag, value) in values {
            let raw = value.as_ref().to_vec();
            let encoded = query::encode_component(&raw).into_bytes();
            if encoded != raw {
                needles.push((tag, Needle::new(encoded)));
            }
            needles.push((tag, Needle::new(raw)));
        }
        PayloadCheck { needles }
    }

    /// Number of compiled needles (including encoded variants).
    pub fn needle_count(&self) -> usize {
        self.needles.len()
    }

    /// Tags found in `bytes`, deduplicated, in needle order.
    pub fn scan_bytes(&self, bytes: &[u8]) -> Vec<T> {
        let mut found: Vec<T> = Vec::new();
        for (tag, needle) in &self.needles {
            if !found.contains(tag) && needle.is_in(bytes) {
                found.push(*tag);
            }
        }
        found
    }

    /// Tags found anywhere in the packet's wire bytes.
    pub fn scan(&self, packet: &HttpPacket) -> Vec<T> {
        self.scan_bytes(&packet.to_bytes())
    }

    /// The §IV-A binary verdict: does the packet belong to the suspicious
    /// group?
    pub fn is_suspicious(&self, packet: &HttpPacket) -> bool {
        let bytes = packet.to_bytes();
        self.needles.iter().any(|(_, n)| n.is_in(&bytes))
    }

    /// The distinct tags in this check, in first-appearance order. Index
    /// in the returned list = the tag's bit in a probe mask.
    pub fn distinct_tags(&self) -> Vec<T> {
        let mut tags: Vec<T> = Vec::new();
        for (tag, _) in &self.needles {
            if !tags.contains(tag) {
                tags.push(*tag);
            }
        }
        tags
    }

    /// Fold this check into the engine's single scan pass: a
    /// [`SensitiveProbe`] carrying every needle (encoded variants
    /// included) keyed by tag bit, plus the bit→tag mapping to interpret
    /// the resulting mask. Panics past 64 distinct tags (the mask is a
    /// `u64`; real deployments carry a handful of identifier kinds).
    ///
    /// Scope note: the probe classifies the three *content fields* the
    /// engine scans (request line, `Cookie`, body), while
    /// [`is_suspicious`](Self::is_suspicious) walks the full wire image
    /// including every header. Identifier leaks in other headers are
    /// invisible to the probe — the §IV distance and signature layers
    /// never see those bytes either, so the folded check classifies
    /// exactly what detection can act on.
    pub fn probe(&self) -> (crate::engine::SensitiveProbe, Vec<T>) {
        let tags = self.distinct_tags();
        assert!(tags.len() <= 64, "probe tag mask is a u64");
        let patterns = self
            .needles
            .iter()
            .map(|(tag, needle)| {
                let bit = tags.iter().position(|t| t == tag).unwrap() as u8;
                (bit, needle.pattern().to_vec())
            })
            .collect();
        (crate::engine::SensitiveProbe::new(patterns), tags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaksig_http::RequestBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn needle_finds_substrings() {
        let n = Needle::new(&b"355195000000017"[..]);
        assert!(n.is_in(b"imei=355195000000017&x=1"));
        assert!(n.is_in(b"355195000000017"));
        assert!(!n.is_in(b"imei=355195000000018"));
        assert!(!n.is_in(b"35519500000001"));
        assert!(!n.is_in(b""));
    }

    #[test]
    fn needle_against_std_oracle() {
        let hay = b"GET /ad?aid=f3a9c1d200b14e77&carrier=NTT+DOCOMO HTTP/1.1";
        for w in 1..hay.len().min(24) {
            for start in 0..hay.len() - w {
                let pat = &hay[start..start + w];
                assert!(Needle::new(pat).is_in(hay), "missed {pat:?}");
            }
        }
        assert!(!Needle::new(&b"zzz"[..]).is_in(hay));
    }

    #[test]
    #[should_panic(expected = "empty needle")]
    fn empty_needle_rejected() {
        let _ = Needle::new(Vec::new());
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Tag {
        Imei,
        Carrier,
    }

    fn check() -> PayloadCheck<Tag> {
        PayloadCheck::new([(Tag::Imei, "355195000000017"), (Tag::Carrier, "NTT DOCOMO")])
    }

    #[test]
    fn scan_tags_matches() {
        let c = check();
        assert_eq!(
            c.scan_bytes(b"imei=355195000000017&c=none"),
            vec![Tag::Imei]
        );
        assert_eq!(c.scan_bytes(b"nothing here"), Vec::<Tag>::new());
    }

    #[test]
    fn encoded_variant_is_matched() {
        let c = check();
        // Form-urlencoded carrier: space became '+'.
        assert_eq!(c.scan_bytes(b"net=NTT+DOCOMO&v=1"), vec![Tag::Carrier]);
        // Raw spelling too (e.g. in a header).
        assert_eq!(c.scan_bytes(b"X: NTT DOCOMO"), vec![Tag::Carrier]);
        assert!(c.needle_count() >= 3, "carrier needs two needles");
    }

    #[test]
    fn packet_level_scan() {
        let c = check();
        let leak = RequestBuilder::get("/ad")
            .query("imei", "355195000000017")
            .query("carrier", "NTT DOCOMO")
            .destination(Ipv4Addr::LOCALHOST, 80, "ad.example")
            .build();
        let clean = RequestBuilder::get("/img/cat.png")
            .destination(Ipv4Addr::LOCALHOST, 80, "cdn.example")
            .build();
        assert_eq!(c.scan(&leak), vec![Tag::Imei, Tag::Carrier]);
        assert!(c.is_suspicious(&leak));
        assert!(c.scan(&clean).is_empty());
        assert!(!c.is_suspicious(&clean));
    }
}
