//! Per-connection state: buffered bytes in, queued bytes out, deadlines.
//!
//! The protocol work is a pure function, [`extract`], over the
//! connection's read buffer: it dispatches on the first bytes (a `SYNC `
//! control line vs a `LEAKBATCH/1` envelope), tolerates arbitrary read
//! boundaries, and classifies everything else as garbage on the first
//! divergent byte. The event loop ([`crate::server`]) owns the sockets
//! and the clock; nothing in this module does I/O, so the state machine
//! is testable byte-by-byte without a socket.

use crate::proto::{
    decode_batch_partial_ref, parse_sync, BatchProgressRef, BatchRecordRef, BATCH_MAGIC,
    MAX_CONTROL_LINE, SYNC_PREFIX,
};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// A complete client → server message. Batch records borrow the read
/// buffer they were extracted from (zero-copy): process them before
/// draining the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inbound<'a> {
    /// `SYNC <have>`: the device asks for anything newer.
    Sync {
        /// The device's installed version.
        have: u64,
    },
    /// A decoded `LEAKBATCH/1` envelope.
    Batch {
        /// The record views, in wire order, borrowing the read buffer.
        records: Vec<BatchRecordRef<'a>>,
    },
}

/// One step of the extraction state machine over a read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step<'a> {
    /// The buffer holds a valid prefix; wait for more bytes. `need` is
    /// the known total message size, when the header has been seen.
    Wait {
        /// Total bytes needed for the pending message, if known.
        need: Option<usize>,
    },
    /// A whole message; `consumed` bytes belong to it.
    Message {
        /// The decoded message.
        msg: Inbound<'a>,
        /// Bytes of the buffer it consumed.
        consumed: usize,
    },
    /// The buffer can never become a valid message: reject the
    /// connection with this stable reason tag.
    Reject(&'static str),
}

/// Whether `buf` could still grow into a string starting with `pat`.
fn prefix_compatible(buf: &[u8], pat: &[u8]) -> bool {
    let n = buf.len().min(pat.len());
    buf[..n] == pat[..n]
}

/// Extract the next message from the front of `buf`.
///
/// `max_body` bounds batch bodies (see
/// [`crate::proto::decode_batch_partial`]). The dispatch is incremental:
/// with one byte buffered, `b"S"` waits (could become `SYNC `), `b"L"`
/// waits (could become `LEAKBATCH/1 `), `b"X"` rejects immediately —
/// garbage never earns buffer space beyond its first divergent byte.
pub fn extract(buf: &[u8], max_body: usize) -> Step<'_> {
    if buf.is_empty() {
        return Step::Wait { need: None };
    }
    let sync_pat = SYNC_PREFIX.as_bytes();
    if prefix_compatible(buf, sync_pat) {
        // Inside the control line now; it must terminate within bounds.
        let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
            if buf.len() >= MAX_CONTROL_LINE {
                return Step::Reject("sync-overlong");
            }
            return Step::Wait { need: None };
        };
        if nl >= MAX_CONTROL_LINE {
            return Step::Reject("sync-overlong");
        }
        let Ok(line) = std::str::from_utf8(&buf[..nl]) else {
            return Step::Reject("sync-binary");
        };
        return match parse_sync(line.trim_end_matches('\r')) {
            Some(have) => Step::Message {
                msg: Inbound::Sync { have },
                consumed: nl + 1,
            },
            None => Step::Reject("sync-malformed"),
        };
    }
    if prefix_compatible(buf, format!("{BATCH_MAGIC} ").as_bytes()) {
        return match decode_batch_partial_ref(buf, max_body) {
            Ok(BatchProgressRef::Incomplete { need }) => Step::Wait { need },
            Ok(BatchProgressRef::Complete { records, consumed }) => Step::Message {
                msg: Inbound::Batch { records },
                consumed,
            },
            Err(e) => Step::Reject(match e {
                crate::proto::BatchError::BadHeader => "batch-header",
                crate::proto::BatchError::TooLarge { .. } => "batch-too-large",
                crate::proto::BatchError::ChecksumMismatch => "batch-checksum",
                crate::proto::BatchError::BadRecord => "batch-record",
            }),
        };
    }
    Step::Reject("bad-magic")
}

/// Why a connection left the event loop. Exactly one terminal reason is
/// recorded per accepted connection, so the server's counters reconcile:
/// `accepted = Σ` terminals once every connection has closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// EOF with an empty buffer and nothing owed: a polite goodbye.
    Clean,
    /// EOF or a read/write error with a message half-buffered: the peer
    /// vanished mid-frame (reset, truncated upload).
    Aborted,
    /// The peer spoke garbage; an `ERR` line was sent first.
    Rejected,
    /// A message sat incomplete past the frame deadline, or the peer
    /// refused to drain our writes past the write deadline (slowloris).
    EvictedStalled,
    /// No bytes in either direction past the idle deadline.
    EvictedIdle,
    /// The global buffer budget forced this connection out.
    EvictedBudget,
}

/// One live connection owned by the event loop.
pub struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// Peer address (event logs).
    pub peer: SocketAddr,
    /// Monotonic connection id (event logs).
    pub id: u64,
    /// Bytes read but not yet consumed by [`extract`].
    pub buf: Vec<u8>,
    /// Bytes queued to write, from `out_pos` on.
    pub out: Vec<u8>,
    /// How much of `out` is already written.
    pub out_pos: usize,
    /// Last moment any byte moved in either direction.
    pub last_activity: Instant,
    /// When the currently-buffered partial message started arriving;
    /// `None` between messages. The frame deadline measures from here —
    /// from the message's *first* byte, so a slowloris feeding one byte
    /// per poll cannot reset it the way it resets `last_activity`.
    pub msg_start: Option<Instant>,
    /// Set once the connection should flush `out` and close (after an
    /// `ERR`, or on drain-shutdown).
    pub closing: Option<CloseReason>,
}

impl Conn {
    /// Adopt an accepted socket.
    pub fn new(stream: TcpStream, peer: SocketAddr, id: u64, now: Instant) -> Self {
        Conn {
            stream,
            peer,
            id,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            last_activity: now,
            msg_start: None,
            closing: None,
        }
    }

    /// Bytes currently owed to the peer.
    pub fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Queue reply bytes.
    pub fn push_out(&mut self, bytes: &[u8]) {
        // Reclaim the flushed prefix before growing.
        if self.out_pos > 0 && self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        self.out.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{encode_batch, BatchRecord};
    use std::net::Ipv4Addr;

    fn rec(i: u8) -> BatchRecord {
        BatchRecord {
            raw: format!("GET /{i} HTTP/1.1\r\nHost: h\r\n\r\n").into_bytes(),
            ip: Ipv4Addr::new(203, 0, 113, i),
            port: 80,
        }
    }

    #[test]
    fn dispatch_handles_split_reads_and_pipelining() {
        let batch = encode_batch(&[rec(1), rec(2)]);
        let mut wire = batch.clone();
        wire.extend_from_slice(b"SYNC 7\n");

        // Every prefix of the batch waits; then the batch decodes and
        // the sync line is untouched behind it.
        for cut in 1..batch.len() {
            match extract(&wire[..cut], 1 << 20) {
                Step::Wait { .. } => {}
                other => panic!("cut {cut}: expected wait, got {other:?}"),
            }
        }
        let Step::Message { msg, consumed } = extract(&wire, 1 << 20) else {
            panic!("complete batch must extract");
        };
        assert_eq!(consumed, batch.len());
        let Inbound::Batch { records } = msg else {
            panic!("expected batch");
        };
        assert_eq!(records.len(), 2);
        assert_eq!(
            extract(&wire[consumed..], 1 << 20),
            Step::Message {
                msg: Inbound::Sync { have: 7 },
                consumed: 7,
            }
        );
    }

    #[test]
    fn sync_line_arrives_byte_by_byte() {
        let line = b"SYNC 123\n";
        for cut in 0..line.len() {
            assert_eq!(
                extract(&line[..cut], 1 << 20),
                Step::Wait { need: None },
                "cut {cut}"
            );
        }
        assert_eq!(
            extract(line, 1 << 20),
            Step::Message {
                msg: Inbound::Sync { have: 123 },
                consumed: line.len(),
            }
        );
        // CRLF-terminated lines work too.
        assert_eq!(
            extract(b"SYNC 5\r\n", 1 << 20),
            Step::Message {
                msg: Inbound::Sync { have: 5 },
                consumed: 8,
            }
        );
    }

    #[test]
    fn garbage_is_rejected_on_the_first_divergent_byte() {
        assert_eq!(extract(b"X", 1 << 20), Step::Reject("bad-magic"));
        assert_eq!(extract(b"\xff\x80", 1 << 20), Step::Reject("bad-magic"));
        assert_eq!(extract(b"SYNC nope\n", 1 << 20), Step::Reject("sync-malformed"));
        assert_eq!(extract(b"SYNCX", 1 << 20), Step::Reject("bad-magic"));
        let overlong = [b"SYNC ".as_slice(), &[b'9'; MAX_CONTROL_LINE]].concat();
        assert_eq!(extract(&overlong, 1 << 20), Step::Reject("sync-overlong"));
        // Ambiguous single bytes stay patient.
        assert_eq!(extract(b"S", 1 << 20), Step::Wait { need: None });
        assert_eq!(extract(b"L", 1 << 20), Step::Wait { need: None });
        assert_eq!(extract(b"", 1 << 20), Step::Wait { need: None });
    }

    #[test]
    fn batch_errors_map_to_stable_reject_tags() {
        let batch = encode_batch(&[rec(1)]);
        let mut bad = batch.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert_eq!(extract(&bad, 1 << 20), Step::Reject("batch-checksum"));
        assert_eq!(extract(&batch, 4), Step::Reject("batch-too-large"));
    }
}
