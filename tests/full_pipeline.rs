//! Workspace integration: netsim → core → device, end to end, through the
//! facade crate's re-exports.

use leaksig::core::prelude::*;
use leaksig::device::{GateAction, PacketGate, SignatureServer, SignatureStore, UserChoice};
use leaksig::netsim::{Dataset, MarketConfig, SensitiveKind};

fn dataset() -> Dataset {
    Dataset::generate(MarketConfig::scaled(31337, 0.05))
}

/// The whole Fig. 3 loop: market traffic → payload check → clustering →
/// signatures → wire → device store → gate enforcement.
#[test]
fn server_to_device_loop() {
    let data = dataset();
    let check: PayloadCheck<SensitiveKind> = PayloadCheck::new(data.model.device.all_values());

    // Server: collect, split, sample, generate.
    let suspicious: Vec<&leaksig::http::HttpPacket> = data
        .packets
        .iter()
        .filter(|p| check.is_suspicious(&p.packet))
        .take(120)
        .map(|p| &p.packet)
        .collect();
    assert!(suspicious.len() >= 100, "scaled market too small");
    let set = generate_signatures(&suspicious, &PipelineConfig::default());
    assert!(!set.is_empty());

    // Distribution.
    let server = SignatureServer::new();
    server.publish(&set).unwrap();
    let store = SignatureStore::new();
    assert!(store.sync(&server).unwrap());
    assert_eq!(store.signature_count(), set.len());

    // Enforcement: replay traffic; prompts must fire only on packets that
    // actually carry sensitive values, and blocking must stick.
    let gate = PacketGate::new(&store);
    let mut prompted_on_clean = 0usize;
    let mut blocked_after_decision = 0usize;
    for labeled in data.packets.iter().take(4000) {
        let app = &data.model.apps[labeled.app].package;
        match gate.intercept(app, &labeled.packet) {
            GateAction::PendingPrompt { prompt_id, .. } => {
                if !labeled.is_sensitive() {
                    prompted_on_clean += 1;
                }
                gate.answer(prompt_id, UserChoice::BlockAlways).unwrap();
            }
            GateAction::Blocked { .. } => blocked_after_decision += 1,
            GateAction::Forwarded => {}
            GateAction::DegradedBlocked { health } => {
                panic!("freshly synced store reported degraded ({health})")
            }
        }
    }
    let stats = gate.stats();
    assert!(stats.prompted > 0, "no prompts at all");
    assert!(blocked_after_decision > 0, "BlockAlways never stuck");
    // Signature FP rate is small; prompts on clean traffic must be rare.
    assert!(
        (prompted_on_clean as f64) < 0.05 * stats.prompted as f64 + 5.0,
        "{prompted_on_clean} clean-traffic prompts out of {} total",
        stats.prompted
    );
}

/// The paper's evaluation formulas computed over the facade, with the
/// expected qualitative result at test scale.
#[test]
fn scaled_experiment_matches_paper_shape() {
    let data = dataset();
    let packets: Vec<&leaksig::http::HttpPacket> = data.packets.iter().map(|p| &p.packet).collect();
    let labels: Vec<bool> = data.packets.iter().map(|p| p.is_sensitive()).collect();

    let small = run_experiment_refs(&packets, &labels, 25, &PipelineConfig::default());
    let large = run_experiment_refs(&packets, &labels, 250, &PipelineConfig::default());

    assert!(
        large.rates.true_positive > 0.80,
        "TP at large N = {:.3}",
        large.rates.true_positive
    );
    assert!(
        large.rates.true_positive + 0.03 >= small.rates.true_positive,
        "TP must not degrade with N: {:.3} -> {:.3}",
        small.rates.true_positive,
        large.rates.true_positive
    );
    assert!(large.rates.false_positive < 0.06);
    assert!(large.rates.false_negative < 0.20);
}

/// Payload check ↔ generator label agreement at integration scale.
#[test]
fn payload_check_is_the_ground_truth_oracle() {
    let data = dataset();
    let check: PayloadCheck<SensitiveKind> = PayloadCheck::new(data.model.device.all_values());
    for p in &data.packets {
        assert_eq!(check.is_suspicious(&p.packet), p.is_sensitive());
    }
}

/// Full determinism across the facade: regenerating with the same seed
/// reproduces the identical wire text.
#[test]
fn same_seed_same_wire_text() {
    let run = || {
        let data = dataset();
        let sample: Vec<&leaksig::http::HttpPacket> = data
            .packets
            .iter()
            .filter(|p| p.is_sensitive())
            .take(80)
            .map(|p| &p.packet)
            .collect();
        encode(&generate_signatures(&sample, &PipelineConfig::default()))
    };
    assert_eq!(run(), run());
}
