//! The detector: apply a signature set to packets.
//!
//! Matching runs on the compiled engine ([`crate::engine`]): construction
//! compiles the set's tokens into per-field multi-pattern automata once,
//! and every `match_*` call is a linear pass over the packet's bytes
//! regardless of signature count. [`Detector::scan`] additionally fans a
//! large batch out across cores with scoped threads (mirroring
//! [`crate::matrix::pairwise`]), one scratch per worker.

use crate::engine::{CompiledDetector, ScanScratch};
use crate::signature::{ConjunctionSignature, SignatureSet};
use leaksig_http::HttpPacket;
use std::sync::Mutex;

/// How a signature is judged against a packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchMode {
    /// Every token must be present (the paper's conjunction semantics).
    Conjunction,
    /// At least this fraction of tokens must be present — *probabilistic
    /// signatures*, the §VI future-work extension. `Fraction(1.0)` is
    /// equivalent to [`MatchMode::Conjunction`].
    Fraction(f64),
    /// Tokens must appear in order within each field (Polygraph's
    /// token-subsequence class) — strictly stronger than the conjunction,
    /// trading recall for resistance to token-shuffling evasion.
    Ordered,
}

/// A compiled signature set ready for high-volume matching.
#[derive(Debug)]
pub struct Detector {
    set: SignatureSet,
    mode: MatchMode,
    engine: CompiledDetector,
    /// Scratch for the single-packet entry points; batch scans use
    /// per-thread scratches instead of contending on this lock.
    scratch: Mutex<ScanScratch>,
}

impl Clone for Detector {
    fn clone(&self) -> Self {
        Detector {
            set: self.set.clone(),
            mode: self.mode,
            engine: self.engine.clone(),
            scratch: Mutex::new(self.engine.scratch()),
        }
    }
}

/// A positive detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Id of the first matching signature.
    pub signature_id: u32,
}

/// A detection with the evidence a user-facing prompt needs: which
/// signature fired, where its cluster's traffic was headed, and the
/// matched invariant tokens (rendered lossily for display).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// Id of the matching signature.
    pub signature_id: u32,
    /// Destinations observed in the signature's source cluster.
    pub hosts: Vec<String>,
    /// The tokens that matched, longest first, as display strings.
    pub matched_tokens: Vec<String>,
}

impl Detector {
    /// Compile a signature set for conjunction matching. Construction is
    /// where the multi-pattern automata are built — install/restore time
    /// on a device, never the per-packet path.
    pub fn new(set: SignatureSet) -> Self {
        Self::with_mode(set, MatchMode::Conjunction)
    }

    /// Compile a signature set with an explicit match mode.
    pub fn with_mode(set: SignatureSet, mode: MatchMode) -> Self {
        if let MatchMode::Fraction(f) = mode {
            assert!(
                (0.0..=1.0).contains(&f) && f > 0.0,
                "fraction threshold must be in (0, 1], got {f}"
            );
        }
        let engine = CompiledDetector::compile(&set, mode);
        let scratch = Mutex::new(engine.scratch());
        Detector {
            set,
            mode,
            engine,
            scratch,
        }
    }

    /// The underlying signatures.
    pub fn signatures(&self) -> &[ConjunctionSignature] {
        &self.set.signatures
    }

    /// The compiled engine (introspection: pattern/state counts, or
    /// per-thread scratches for custom batch drivers).
    pub fn engine(&self) -> &CompiledDetector {
        &self.engine
    }

    /// First matching signature, if any.
    pub fn match_packet(&self, packet: &HttpPacket) -> Option<Detection> {
        let mut scratch = self.scratch.lock().expect("detector scratch");
        self.engine
            .match_first(&mut scratch, packet)
            .map(|i| Detection {
                signature_id: self.set.signatures[i].id,
            })
    }

    /// All matching signature ids (diagnostics; `match_packet` is the
    /// fast path).
    pub fn matches_all(&self, packet: &HttpPacket) -> Vec<u32> {
        let mut scratch = self.scratch.lock().expect("detector scratch");
        self.engine.matched_ids(&mut scratch, packet)
    }

    /// Like [`Detector::match_packet`], but returns the evidence for a
    /// user-facing prompt ("this request matches signature N, whose
    /// cluster sent traffic to these hosts, on these invariants").
    pub fn explain(&self, packet: &HttpPacket) -> Option<Explanation> {
        let first = {
            let mut scratch = self.scratch.lock().expect("detector scratch");
            self.engine.match_first(&mut scratch, packet)?
        };
        let sig = &self.set.signatures[first];
        let matched_tokens = sig
            .tokens
            .iter()
            .map(|t| String::from_utf8_lossy(t.bytes()).into_owned())
            .collect();
        Some(Explanation {
            signature_id: sig.id,
            hosts: sig.hosts.clone(),
            matched_tokens,
        })
    }

    /// Detection mask over a packet slice. Large batches are fanned out
    /// across all available cores in contiguous chunks (deterministic
    /// mask, whatever the thread count).
    pub fn scan<'a, I>(&self, packets: I) -> Vec<bool>
    where
        I: IntoIterator<Item = &'a HttpPacket>,
    {
        let refs: Vec<&HttpPacket> = packets.into_iter().collect();
        self.scan_refs(&refs)
    }

    /// [`Detector::scan`] over an already-collected slice.
    pub fn scan_refs(&self, packets: &[&HttpPacket]) -> Vec<bool> {
        /// Below this, thread spawn overhead beats the win.
        const PAR_THRESHOLD: usize = 256;
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if packets.len() < PAR_THRESHOLD || threads < 2 {
            let mut scratch = self.engine.scratch();
            return packets
                .iter()
                .map(|p| self.engine.match_first(&mut scratch, p).is_some())
                .collect();
        }

        let mut mask = vec![false; packets.len()];
        let chunk = packets.len().div_ceil(threads);
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for (packet_chunk, mask_chunk) in
                packets.chunks(chunk).zip(mask.chunks_mut(chunk))
            {
                handles.push(scope.spawn(move |_| {
                    let mut scratch = self.engine.scratch();
                    for (p, m) in packet_chunk.iter().zip(mask_chunk.iter_mut()) {
                        *m = self.engine.match_first(&mut scratch, p).is_some();
                    }
                }));
            }
            for h in handles {
                h.join().expect("scan worker panicked");
            }
        })
        .expect("crossbeam scope");
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::{signature_from_cluster, SignatureConfig};
    use leaksig_http::RequestBuilder;
    use std::net::Ipv4Addr;

    fn sig_for(host: &str, id_param: &str, value: &str, id: u32) -> ConjunctionSignature {
        let mk = |slot: &str| {
            RequestBuilder::get("/ad")
                .query(id_param, value)
                .query("slot", slot)
                .destination(Ipv4Addr::new(203, 0, 113, 9), 80, host)
                .build()
        };
        let (a, b) = (mk("1"), (mk("2")));
        signature_from_cluster(id, &[&a, &b], &SignatureConfig::default()).unwrap()
    }

    #[test]
    fn detector_matches_and_identifies() {
        let s1 = sig_for("ad-maker.info", "imei", "355195000000017", 10);
        let s2 = sig_for("nend.net", "udid", "dd72cbaeab8d2e442d92e90c2e829e4b", 20);
        let det = Detector::new(SignatureSet {
            signatures: vec![s1, s2],
        });
        assert_eq!(det.signatures().len(), 2);

        let hit = RequestBuilder::get("/ad")
            .query("udid", "dd72cbaeab8d2e442d92e90c2e829e4b")
            .query("slot", "9")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "nend.net")
            .build();
        assert_eq!(det.match_packet(&hit), Some(Detection { signature_id: 20 }));
        assert_eq!(det.matches_all(&hit), vec![20]);

        let miss = RequestBuilder::get("/img/x.png")
            .destination(Ipv4Addr::new(198, 51, 100, 1), 80, "cdn.example")
            .build();
        assert_eq!(det.match_packet(&miss), None);
        assert!(det.matches_all(&miss).is_empty());
    }

    #[test]
    fn scan_produces_mask() {
        let s = sig_for("ad-maker.info", "imei", "355195000000017", 1);
        let det = Detector::new(SignatureSet {
            signatures: vec![s],
        });
        let hit = RequestBuilder::get("/ad")
            .query("imei", "355195000000017")
            .query("slot", "3")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
            .build();
        let miss = RequestBuilder::get("/other")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
            .build();
        let mask = det.scan([&hit, &miss, &hit]);
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn fraction_mode_tolerates_one_renamed_token() {
        // Build a signature spanning two fields (request line + cookie),
        // then probe with a packet missing exactly the cookie token (a
        // module revision dropped its session cookie).
        let mk = |slot: &str| {
            RequestBuilder::get("/ad")
                .query("imei", "355195000000017")
                .query("slot", slot)
                .cookie("sid=abcdef12345678")
                .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
                .build()
        };
        let (a, b) = (mk("1"), mk("2"));
        let sig = signature_from_cluster(5, &[&a, &b], &SignatureConfig::default()).unwrap();
        assert!(sig.tokens.len() >= 2, "need a multi-token signature");
        let set = SignatureSet {
            signatures: vec![sig],
        };
        // Same module, cookie dropped: the rline tokens still match.
        let revised = RequestBuilder::get("/ad")
            .query("imei", "355195000000017")
            .query("slot", "4")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
            .build();
        let strict = Detector::new(set.clone());
        let lenient = Detector::with_mode(set.clone(), MatchMode::Fraction(0.5));
        let exact = Detector::with_mode(set, MatchMode::Fraction(1.0));
        assert_eq!(
            strict.match_packet(&revised).is_some(),
            exact.match_packet(&revised).is_some()
        );
        assert!(
            lenient.match_packet(&revised).is_some(),
            "fractional match should fire"
        );
        // An unrelated packet stays unmatched even leniently.
        let unrelated = RequestBuilder::get("/api/list")
            .query("page", "2")
            .destination(Ipv4Addr::new(198, 51, 100, 7), 80, "api.example.jp")
            .build();
        assert!(lenient.match_packet(&unrelated).is_none());
    }

    #[test]
    fn ordered_mode_plugs_into_detector() {
        let sig = sig_for("nend.net", "aid", "f3a9c1d200b14e77", 2);
        let set = SignatureSet {
            signatures: vec![sig],
        };
        let det = Detector::with_mode(set, MatchMode::Ordered);
        let probe = RequestBuilder::get("/ad")
            .query("aid", "f3a9c1d200b14e77")
            .query("slot", "5")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "nend.net")
            .build();
        assert!(det.match_packet(&probe).is_some());
    }

    #[test]
    fn fraction_one_equals_conjunction() {
        let sig = sig_for("nend.net", "aid", "f3a9c1d200b14e77", 9);
        let set = SignatureSet {
            signatures: vec![sig],
        };
        let conj = Detector::new(set.clone());
        let frac = Detector::with_mode(set, MatchMode::Fraction(1.0));
        let probe = RequestBuilder::get("/ad")
            .query("aid", "f3a9c1d200b14e77")
            .query("slot", "2")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "nend.net")
            .build();
        assert_eq!(conj.match_packet(&probe), frac.match_packet(&probe));
    }

    #[test]
    #[should_panic(expected = "fraction threshold")]
    fn zero_fraction_rejected() {
        let _ = Detector::with_mode(SignatureSet::default(), MatchMode::Fraction(0.0));
    }

    #[test]
    fn explanations_carry_evidence() {
        let s = sig_for("ad-maker.info", "imei", "355195000000017", 3);
        let det = Detector::new(SignatureSet {
            signatures: vec![s],
        });
        let hit = RequestBuilder::get("/ad")
            .query("imei", "355195000000017")
            .query("slot", "1")
            .destination(Ipv4Addr::new(203, 0, 113, 9), 80, "ad-maker.info")
            .build();
        let ex = det.explain(&hit).expect("explained");
        assert_eq!(ex.signature_id, 3);
        assert_eq!(ex.hosts, vec!["ad-maker.info".to_string()]);
        assert!(ex
            .matched_tokens
            .iter()
            .any(|t| t.contains("355195000000017")));
        let miss = RequestBuilder::get("/other")
            .destination(Ipv4Addr::LOCALHOST, 80, "x.jp")
            .build();
        assert!(det.explain(&miss).is_none());
    }

    #[test]
    fn empty_detector_matches_nothing() {
        let det = Detector::new(SignatureSet::default());
        let p = RequestBuilder::get("/")
            .destination(Ipv4Addr::LOCALHOST, 80, "x")
            .build();
        assert_eq!(det.match_packet(&p), None);
    }
}
