//! Canonical Huffman coding over bytes.
//!
//! Order-0 entropy coder used standalone (as [`Huffman`]) and as the
//! second stage of [`crate::Lzh`] (LZSS token stream → Huffman), which
//! approximates the LZ77+entropy-coding structure of DEFLATE and tightens
//! the NCD's `C(·)` estimate.
//!
//! Stream layout:
//!
//! ```text
//! [1 byte  ] format tag: 0 = empty, 1 = single-symbol run,
//!            2 = coded, 3 = stored
//! tag 1:  [1 byte symbol][4 bytes LE count]
//! tag 2:  [RLE'd code-length table][4 bytes LE symbol count][bitstream]
//! tag 3:  [raw bytes]   (fallback when coding would expand the input)
//! ```
//!
//! The length table is run-length encoded as `(length, run)` byte pairs
//! covering all 256 symbols. Codes are canonical (assigned in (length,
//! symbol) order), so only the lengths travel; the decoder rebuilds the
//! same codebook.

use crate::{Compressor, DecodeError};

/// Standalone order-0 Huffman compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Huffman;

const TAG_EMPTY: u8 = 0;
const TAG_RUN: u8 = 1;
const TAG_CODED: u8 = 2;
const TAG_STORED: u8 = 3;

/// RLE the 256-entry length table as (length, run) pairs; runs cap at 255.
fn encode_lengths(lengths: &[u8; 256], out: &mut Vec<u8>) {
    let mut i = 0usize;
    while i < 256 {
        let v = lengths[i];
        let mut run = 1usize;
        while i + run < 256 && lengths[i + run] == v && run < 255 {
            run += 1;
        }
        out.push(v);
        out.push(run as u8);
        i += run;
    }
}

/// Inverse of [`encode_lengths`]; returns the table and bytes consumed.
fn decode_lengths(data: &[u8]) -> Result<([u8; 256], usize), DecodeError> {
    let mut lengths = [0u8; 256];
    let mut covered = 0usize;
    let mut pos = 0usize;
    while covered < 256 {
        let (&v, &run) = match (data.get(pos), data.get(pos + 1)) {
            (Some(v), Some(r)) => (v, r),
            _ => return Err(DecodeError::Truncated),
        };
        pos += 2;
        let run = run as usize;
        if run == 0 || covered + run > 256 {
            return Err(DecodeError::Truncated);
        }
        lengths[covered..covered + run].fill(v);
        covered += run;
    }
    Ok((lengths, pos))
}

/// Code lengths for each byte symbol via a heap-built Huffman tree.
fn code_lengths(freq: &[u64; 256]) -> [u8; 256] {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        // Tie-break on id for determinism.
        id: u32,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u8),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap via BinaryHeap.
            other
                .weight
                .cmp(&self.weight)
                .then_with(|| other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths = [0u8; 256];
    let mut heap: std::collections::BinaryHeap<Node> = freq
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w > 0)
        .map(|(sym, &weight)| Node {
            weight,
            id: sym as u32,
            kind: NodeKind::Leaf(sym as u8),
        })
        .collect();
    match heap.len() {
        0 => return lengths,
        1 => {
            if let NodeKind::Leaf(sym) = heap.pop().unwrap().kind {
                lengths[sym as usize] = 1;
            }
            return lengths;
        }
        _ => {}
    }
    let mut next_id = 256u32;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
        next_id += 1;
    }
    // Walk the tree assigning depths iteratively.
    let root = heap.pop().unwrap();
    let mut stack = vec![(root, 0u8)];
    while let Some((node, depth)) = stack.pop() {
        match node.kind {
            NodeKind::Leaf(sym) => lengths[sym as usize] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((*a, depth + 1));
                stack.push((*b, depth + 1));
            }
        }
    }
    lengths
}

/// Canonical codes from lengths: `(code, len)` per symbol, assigned in
/// (length, symbol) order.
fn canonical_codes(lengths: &[u8; 256]) -> [(u32, u8); 256] {
    let mut order: Vec<u8> = (0u16..256).map(|s| s as u8).collect();
    order.sort_by_key(|&s| (lengths[s as usize], s));
    let mut codes = [(0u32, 0u8); 256];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &sym in order.iter().filter(|&&s| lengths[s as usize] > 0) {
        let len = lengths[sym as usize];
        code <<= len - prev_len;
        codes[sym as usize] = (code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

impl Compressor for Huffman {
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        if data.is_empty() {
            return vec![TAG_EMPTY];
        }
        let mut freq = [0u64; 256];
        for &b in data {
            freq[b as usize] += 1;
        }
        let distinct = freq.iter().filter(|&&f| f > 0).count();
        if distinct == 1 {
            let sym = freq.iter().position(|&f| f > 0).unwrap() as u8;
            let mut out = vec![TAG_RUN, sym];
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            return out;
        }

        let lengths = code_lengths(&freq);
        let codes = canonical_codes(&lengths);
        let mut out = Vec::with_capacity(64 + data.len() / 2);
        out.push(TAG_CODED);
        encode_lengths(&lengths, &mut out);
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());

        let mut acc: u64 = 0;
        let mut bits: u32 = 0;
        for &b in data {
            let (code, len) = codes[b as usize];
            acc = (acc << len) | code as u64;
            bits += len as u32;
            while bits >= 8 {
                bits -= 8;
                out.push((acc >> bits) as u8);
            }
        }
        if bits > 0 {
            out.push((acc << (8 - bits)) as u8);
        }
        // Entropy coding can lose on short or flat inputs once the table
        // header is paid for; fall back to a stored block.
        if out.len() > data.len() + 1 {
            let mut stored = Vec::with_capacity(data.len() + 1);
            stored.push(TAG_STORED);
            stored.extend_from_slice(data);
            return stored;
        }
        out
    }

    /// `C(data)` without building the bitstream: the coded size is the
    /// header (tag + RLE'd length table + count) plus `Σ freq[s]·len[s]`
    /// bits, and the stored fallback caps it at `data.len() + 1` exactly
    /// as [`Compressor::compress`] does.
    fn compressed_len(&self, data: &[u8]) -> usize {
        if data.is_empty() {
            return 1; // TAG_EMPTY
        }
        let mut freq = [0u64; 256];
        for &b in data {
            freq[b as usize] += 1;
        }
        let distinct = freq.iter().filter(|&&f| f > 0).count();
        if distinct == 1 {
            return 6; // TAG_RUN + symbol + 4-byte count
        }
        let lengths = code_lengths(&freq);
        // Table size: 2 bytes per (length, run) pair, runs capped at 255.
        let mut table = 0usize;
        let mut i = 0usize;
        while i < 256 {
            let mut run = 1usize;
            while i + run < 256 && lengths[i + run] == lengths[i] && run < 255 {
                run += 1;
            }
            table += 2;
            i += run;
        }
        let bits: u64 = freq
            .iter()
            .zip(lengths.iter())
            .map(|(&f, &l)| f * l as u64)
            .sum();
        let coded = 1 + table + 4 + (bits as usize).div_ceil(8);
        coded.min(data.len() + 1) // stored fallback
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecodeError> {
        match data.first() {
            None => Err(DecodeError::Truncated),
            Some(&TAG_EMPTY) => Ok(Vec::new()),
            Some(&TAG_RUN) => {
                if data.len() < 6 {
                    return Err(DecodeError::Truncated);
                }
                let sym = data[1];
                let count = u32::from_le_bytes(data[2..6].try_into().unwrap()) as usize;
                Ok(vec![sym; count])
            }
            Some(&TAG_STORED) => Ok(data[1..].to_vec()),
            Some(&TAG_CODED) => {
                let (lengths, table_len) = decode_lengths(&data[1..])?;
                let header_end = 1 + table_len;
                if data.len() < header_end + 4 {
                    return Err(DecodeError::Truncated);
                }
                let count = u32::from_le_bytes(data[header_end..header_end + 4].try_into().unwrap())
                    as usize;
                let bitstream = &data[header_end + 4..];

                // Canonical decoding tables: per length, the first code
                // and the slice of symbols using that length, in the same
                // (length, symbol) order the encoder assigned codes in.
                let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
                if max_len == 0 || max_len > 63 {
                    return Err(DecodeError::Truncated);
                }
                let mut syms: Vec<u8> = (0u16..256)
                    .map(|s| s as u8)
                    .filter(|&s| lengths[s as usize] > 0)
                    .collect();
                syms.sort_by_key(|&s| (lengths[s as usize], s));
                let mut len_count = vec![0u64; max_len + 1];
                for &s in &syms {
                    len_count[lengths[s as usize] as usize] += 1;
                }
                let mut first = vec![0u64; max_len + 1];
                let mut offset = vec![0usize; max_len + 1];
                let mut code = 0u64;
                let mut idx = 0usize;
                for len in 1..=max_len {
                    first[len] = code;
                    offset[len] = idx;
                    code = (code + len_count[len]) << 1;
                    idx += len_count[len] as usize;
                }

                // Bit-serial canonical decode.
                let mut out = Vec::with_capacity(count);
                let mut bit_pos = 0usize;
                let total_bits = bitstream.len() * 8;
                while out.len() < count {
                    let mut cur_code = 0u64;
                    let mut cur_len = 0usize;
                    loop {
                        if bit_pos == total_bits {
                            return Err(DecodeError::Truncated);
                        }
                        let bit = (bitstream[bit_pos / 8] >> (7 - bit_pos % 8)) & 1;
                        bit_pos += 1;
                        cur_code = (cur_code << 1) | bit as u64;
                        cur_len += 1;
                        if cur_len > max_len {
                            return Err(DecodeError::Truncated);
                        }
                        if len_count[cur_len] > 0
                            && cur_code >= first[cur_len]
                            && cur_code - first[cur_len] < len_count[cur_len]
                        {
                            let sym = syms[offset[cur_len] + (cur_code - first[cur_len]) as usize];
                            out.push(sym);
                            break;
                        }
                    }
                }
                Ok(out)
            }
            Some(&tag) => Err(DecodeError::BadCode(tag as u16)),
        }
    }
}

/// LZSS followed by Huffman — the DEFLATE-shaped chain, and the tightest
/// `C(·)` this crate offers for NCD purposes.
#[derive(Debug, Clone, Default)]
pub struct Lzh {
    lzss: crate::Lzss,
}

impl Lzh {
    /// Chain with a custom LZSS stage.
    pub fn new(lzss: crate::Lzss) -> Self {
        Lzh { lzss }
    }
}

impl Compressor for Lzh {
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        Huffman.compress(&self.lzss.compress(data))
    }

    /// The entropy stage's count-only path over the (materialized) LZSS
    /// stream — the Huffman bitstream, the larger of the two buffers, is
    /// never built.
    fn compressed_len(&self, data: &[u8]) -> usize {
        Huffman.compressed_len(&self.lzss.compress(data))
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, DecodeError> {
        self.lzss.decompress(&Huffman.decompress(data)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_h(data: &[u8]) {
        let z = Huffman.compress(data);
        assert_eq!(Huffman.decompress(&z).expect("decode"), data);
    }

    #[test]
    fn huffman_edge_cases() {
        round_trip_h(b"");
        round_trip_h(b"a");
        round_trip_h(b"aaaaaaaaaa");
        round_trip_h(b"ab");
        round_trip_h(&[0u8, 255, 0, 255, 128]);
    }

    #[test]
    fn huffman_round_trips_text() {
        let data =
            b"GET /getad?androidid=f3a9c1d200b14e77&carrier=NTT+DOCOMO HTTP/1.1\r\n".repeat(5);
        round_trip_h(&data);
    }

    #[test]
    fn huffman_beats_raw_on_skewed_data() {
        // Highly skewed byte distribution compresses well below 8 bits/sym.
        let mut data = vec![b'e'; 4000];
        data.extend_from_slice(&[b'x'; 100]);
        data.extend_from_slice(b"rare bytes: qzj");
        let z = Huffman.compress(&data);
        assert!(
            z.len() < data.len() / 4,
            "expected >4x on skewed data, got {} -> {}",
            data.len(),
            z.len()
        );
        round_trip_h(&data);
    }

    #[test]
    fn huffman_rejects_garbage() {
        assert!(matches!(
            Huffman.decompress(&[]),
            Err(DecodeError::Truncated)
        ));
        assert!(matches!(
            Huffman.decompress(&[9]),
            Err(DecodeError::BadCode(9))
        ));
        assert!(matches!(
            Huffman.decompress(&[TAG_RUN, b'a']),
            Err(DecodeError::Truncated)
        ));
        // Coded header claiming symbols but with an empty bitstream.
        let mut bogus = vec![TAG_CODED];
        bogus.push(8u8); // all 256 symbols 8 bits...
        bogus.push(255);
        bogus.push(8u8);
        bogus.push(1);
        bogus.extend_from_slice(&5u32.to_le_bytes());
        assert!(Huffman.decompress(&bogus).is_err());
        // Truncated RLE table.
        assert!(matches!(
            Huffman.decompress(&[TAG_CODED, 4]),
            Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn lzh_round_trips() {
        let z = Lzh::default();
        for data in [
            &b""[..],
            b"a",
            b"abcabcabcabc",
            b"GET /ad?imei=355195000000017&slot=3 HTTP/1.1",
        ] {
            assert_eq!(z.decompress(&z.compress(data)).unwrap(), data);
        }
        let long = b"Host: ad-maker.info\r\nCookie: sid=0123456789abcdef\r\n".repeat(40);
        assert_eq!(z.decompress(&z.compress(&long)).unwrap(), long);
    }

    #[test]
    fn lzh_compresses_tighter_than_lzss_alone() {
        // Varied requests: enough LZSS residue for entropy coding to bite.
        let mut data = Vec::new();
        for i in 0..60u32 {
            data.extend_from_slice(
                format!(
                    "GET /getad?app=jp.co.app{i}.game&udid={:032x}&slot={} HTTP/1.1\r\n",
                    (i as u128).wrapping_mul(0x9e3779b97f4a7c15_u128),
                    i % 9
                )
                .as_bytes(),
            );
        }
        let lzss_len = crate::Lzss::default().compressed_len(&data);
        let lzh_len = Lzh::default().compressed_len(&data);
        assert!(
            lzh_len < lzss_len,
            "lzh {lzh_len} should beat lzss {lzss_len}"
        );
    }

    #[test]
    fn huffman_never_expands_much() {
        // Stored fallback bounds expansion to one tag byte.
        let random: Vec<u8> = (0u32..500)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        assert!(Huffman.compress(&random).len() <= random.len() + 1);
        let z = Huffman.compress(&random);
        assert_eq!(Huffman.decompress(&z).unwrap(), random);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freq = [0u64; 256];
        for (i, f) in freq.iter_mut().enumerate().take(20) {
            *f = (i as u64 + 1) * 7;
        }
        let lengths = code_lengths(&freq);
        let codes = canonical_codes(&lengths);
        let live: Vec<(u32, u8)> = (0..256)
            .filter(|&s| lengths[s] > 0)
            .map(|s| codes[s])
            .collect();
        for (i, &(ca, la)) in live.iter().enumerate() {
            for &(cb, lb) in &live[i + 1..] {
                let (short, slen, long, llen) = if la <= lb {
                    (ca, la, cb, lb)
                } else {
                    (cb, lb, ca, la)
                };
                assert!(
                    long >> (llen - slen) != short,
                    "code {short:0slen$b} is a prefix of {long:0llen$b}",
                    slen = slen as usize,
                    llen = llen as usize
                );
            }
        }
    }
}
