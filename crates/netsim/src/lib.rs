#![warn(missing_docs)]
//! Synthetic Android-market traffic for `leaksig`.
//!
//! The paper's evaluation dataset — network captures of 1,188 free Google
//! Play Japan applications on one Galaxy Nexus S, 107,859 HTTP packets of
//! which 23,309 carry sensitive identifiers — is a proprietary one-off
//! that cannot be re-collected (the device, the market snapshot, and most
//! of the 2012 ad networks are gone). This crate is the substitution
//! documented in DESIGN.md §2: a seeded generator whose output matches the
//! published marginals of every table and figure:
//!
//! * **Table I** — permission-combination counts (exact by construction);
//! * **Table II** — packets and apps per top destination (exact quotas);
//! * **Table III** — sensitive-information packets/apps/destinations per
//!   kind (calibrated within a few percent);
//! * **Fig. 2** — destinations-per-app distribution (tuned lognormal).
//!
//! Structure: [`plan`] declares the published constants, the market
//! planner assigns apps/groups/destinations ([`MarketModel`]), templates
//! render per-domain request shapes ([`DomainTemplate`]), the trace layer
//! emits the labeled packet capture ([`Dataset`]), and [`stats`]
//! recomputes the tables from a generated dataset.
//!
//! ```
//! use leaksig_netsim::{Dataset, MarketConfig};
//!
//! let data = Dataset::generate(MarketConfig::scaled(42, 0.02));
//! assert!(data.sensitive_count() > 0);
//! let dist = leaksig_netsim::stats::destination_distribution(&data);
//! assert!(dist.mean > 1.0);
//! ```

mod device;
mod market;
mod names;
pub mod obfuscate;
mod orgs;
mod permissions;
pub mod plan;
pub mod scenario;
pub mod stats;
mod template;
mod trace;

pub use device::{luhn_check_digit, luhn_valid, Carrier, DeviceProfile, SensitiveKind};
pub use market::{AppSpec, DomainModel, MarketConfig, MarketModel};
pub use orgs::OrgRegistry;
pub use permissions::{table_i_rows, Permission, PermissionRow, PermissionSet, TOTAL_APPS};
pub use scenario::{obfuscation_scenario, ObfLabel, ObfuscationScenario};
pub use template::{AppCtx, DomainTemplate, DEVICE_UA};
pub use trace::{Dataset, LabeledPacket};
