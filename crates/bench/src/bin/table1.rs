//! Regenerate **Table I**: applications per dangerous permission
//! combination.
//!
//! ```text
//! cargo run --release -p leaksig-bench --bin table1
//! ```

use leaksig_bench::{cli_config, rule};
use leaksig_netsim::{table_i_rows, MarketModel, Permission};

fn main() {
    let config = cli_config();
    let model = MarketModel::build(config);

    println!("Table I — applications with dangerous permission combinations");
    println!("(INTERNET=I, LOCATION=L, PHONE STATE=P, CONTACTS=C)\n");
    println!("{:<16} {:>10} {:>10}", "combination", "paper", "measured");
    rule(38);

    for row in table_i_rows() {
        let measured = model
            .apps
            .iter()
            .filter(|a| a.permissions == row.set && !a.untracked_extras)
            .count();
        let label: String = [
            (Permission::Internet, 'I'),
            (Permission::Location, 'L'),
            (Permission::ReadPhoneState, 'P'),
            (Permission::ReadContacts, 'C'),
        ]
        .iter()
        .filter(|(p, _)| row.set.has(*p))
        .map(|&(_, c)| c)
        .collect();
        println!("{:<16} {:>10} {:>10}", label, row.apps, measured);
    }
    rule(38);

    let dangerous = model
        .apps
        .iter()
        .filter(|a| a.permissions.is_dangerous_combination())
        .count();
    let internet_only = model
        .apps
        .iter()
        .filter(|a| a.permissions == leaksig_netsim::PermissionSet::of(&[Permission::Internet]))
        .filter(|a| !a.untracked_extras)
        .count();
    println!(
        "\ntotal apps: {} (paper: 1188 at scale 1.0)",
        model.apps.len()
    );
    println!(
        "INTERNET only: {} ({:.0}%; paper: 302, 25%)",
        internet_only,
        100.0 * internet_only as f64 / model.apps.len() as f64
    );
    println!(
        "INTERNET + sensitive permission: {} ({:.0}%; paper: 727, 61%)",
        dangerous,
        100.0 * dangerous as f64 / model.apps.len() as f64
    );
}
