#![warn(missing_docs)]
//! `leaksig-lint` — static auditor for finished signature artifacts.
//!
//! The generation pipeline filters §VI's `POST *` hazards at the source,
//! but signature sets also arrive over the wire, from older producers,
//! and from hand edits. This crate runs the full rule catalogue over a
//! [`SignatureSet`] (plus, optionally, the device policy that references
//! it) and renders the findings as human-readable text or stable JSON.
//!
//! The rule primitives live in `leaksig_core::audit` so the core pipeline
//! and the device store can gate deployments without depending on this
//! crate; what `leaksig-lint` adds is:
//!
//! * a bundled normal-traffic corpus (deterministic `leaksig-netsim`
//!   benign traffic) behind the L005 generality rule, so "would this
//!   signature fire on ordinary packets?" is answerable offline;
//! * one-call orchestration of every rule with deterministic ordering;
//! * report rendering ([`render_text`], [`render_json`]).
//!
//! ```
//! use leaksig_lint::Linter;
//! use leaksig_core::prelude::*;
//!
//! let set = SignatureSet::default();
//! let linter = Linter::new();
//! assert!(linter.lint(&set).is_empty());
//! ```

use leaksig_core::audit::{self, AuditConfig, Code, Diagnostic, Severity};
use leaksig_core::signature::SignatureSet;
use leaksig_http::HttpPacket;
use leaksig_netsim::{Dataset, MarketConfig};

pub use leaksig_core::audit::has_errors;

mod render;
pub use render::{render_json, render_text};

/// Everything configurable about a lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Parameters of the structural rules (anchor length, boilerplate).
    pub audit: AuditConfig,
    /// L005 threshold: a signature matching more than this fraction of
    /// the normal corpus is an Error. Chosen above the pipeline's own
    /// vetting bar (2%) so sets that passed generation-time pruning on a
    /// *different* benign sample do not flap.
    pub corpus_max_fraction: f64,
    /// Number of benign packets in the bundled corpus.
    pub corpus_size: usize,
    /// Seed of the bundled corpus (deterministic across runs).
    pub corpus_seed: u64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            audit: AuditConfig::default(),
            corpus_max_fraction: 0.05,
            corpus_size: 1200,
            corpus_seed: 0x11D2,
        }
    }
}

/// The auditor: rule configuration plus the normal-traffic corpus the
/// generality rule measures against.
#[derive(Debug)]
pub struct Linter {
    config: LintConfig,
    corpus: Vec<HttpPacket>,
}

impl Default for Linter {
    fn default() -> Self {
        Linter::new()
    }
}

impl Linter {
    /// A linter with default configuration and the bundled corpus.
    pub fn new() -> Self {
        Linter::with_config(LintConfig::default())
    }

    /// A linter with explicit configuration and the bundled corpus.
    pub fn with_config(config: LintConfig) -> Self {
        let corpus = bundled_corpus(config.corpus_seed, config.corpus_size);
        Linter { config, corpus }
    }

    /// A linter measuring generality against caller-supplied benign
    /// traffic instead of the bundled corpus (e.g. a site-local capture).
    pub fn with_corpus(config: LintConfig, corpus: Vec<HttpPacket>) -> Self {
        Linter { config, corpus }
    }

    /// Number of packets in the corpus behind the L005 rule.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// The benign corpus itself, for callers running their own analyses
    /// against the same traffic the L005 rule measures (e.g. the CLI's
    /// static FP-exposure bounds).
    pub fn corpus(&self) -> &[HttpPacket] {
        &self.corpus
    }

    /// Run every set-level rule: structural, shadowing/subsumption,
    /// corpus generality, and wire round-trip. Findings are ordered by
    /// severity (errors first), then signature id, then code.
    pub fn lint(&self, set: &SignatureSet) -> Vec<Diagnostic> {
        let refs: Vec<&HttpPacket> = self.corpus.iter().collect();
        let mut out = audit::structural(set, &self.config.audit);
        out.extend(audit::subsumption(set));
        out.extend(audit::corpus_false_positives(
            set,
            &refs,
            self.config.corpus_max_fraction,
        ));
        out.extend(audit::wire_round_trip(set));
        sort_report(&mut out);
        out
    }

    /// [`Linter::lint`] plus the cross-artifact policy check (L010):
    /// `rows` are the device policy engine's remembered
    /// `(app, signature_id, allow)` decisions.
    pub fn lint_with_policy(
        &self,
        set: &SignatureSet,
        rows: &[(String, u32, bool)],
    ) -> Vec<Diagnostic> {
        let mut out = self.lint(set);
        out.extend(audit::policy_references(set, rows));
        sort_report(&mut out);
        out
    }
}

/// Deterministic report order: errors before warnings, then by code,
/// signature id (set-level findings first), field, and message — so gate
/// logs and report snapshots are byte-identical across runs regardless
/// of which rule emitted a finding first.
pub fn sort_findings(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.code.cmp(&b.code))
            .then(a.signature_id.cmp(&b.signature_id))
            .then(a.field.map(|f| f.tag()).cmp(&b.field.map(|f| f.tag())))
            .then(a.message.cmp(&b.message))
    });
}

fn sort_report(diagnostics: &mut [Diagnostic]) {
    sort_findings(diagnostics);
}

/// The bundled benign corpus: the deterministic netsim market's normal
/// group. Generated once per [`Linter`] construction; the seed is fixed
/// by configuration, so two runs agree on every L005 verdict.
fn bundled_corpus(seed: u64, size: usize) -> Vec<HttpPacket> {
    let data = Dataset::generate(MarketConfig::scaled(seed, 0.02));
    data.packets
        .iter()
        .filter(|p| !p.is_sensitive())
        .take(size)
        .map(|p| p.packet.clone())
        .collect()
}

/// Count findings at a severity.
pub fn count_at(diagnostics: &[Diagnostic], severity: Severity) -> usize {
    diagnostics.iter().filter(|d| d.severity == severity).count()
}

/// Convenience used by tests and callers: does the report contain a
/// specific code?
pub fn contains_code(diagnostics: &[Diagnostic], code: Code) -> bool {
    diagnostics.iter().any(|d| d.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaksig_core::signature::{ConjunctionSignature, Field, FieldToken};

    fn sig(id: u32, tokens: Vec<FieldToken>) -> ConjunctionSignature {
        ConjunctionSignature {
            id,
            tokens,
            cluster_size: 2,
            hosts: vec!["h.example".to_string()],
        }
    }

    #[test]
    fn bundled_corpus_is_deterministic_and_benign() {
        let linter = Linter::new();
        assert!(linter.corpus_len() > 200, "corpus {}", linter.corpus_len());
        let again = Linter::new();
        assert_eq!(linter.corpus_len(), again.corpus_len());
    }

    #[test]
    fn empty_set_is_clean() {
        assert!(Linter::new().lint(&SignatureSet::default()).is_empty());
    }

    #[test]
    fn report_orders_errors_first() {
        let set = SignatureSet {
            signatures: vec![
                // Warning: boilerplate fragment (plus a healthy anchor).
                sig(
                    0,
                    vec![
                        FieldToken::new(Field::Body, &b"imei=355195000000017"[..]),
                        FieldToken::new(Field::RequestLine, &b"ST /"[..]),
                    ],
                ),
                // Error: no anchor.
                sig(1, vec![FieldToken::new(Field::RequestLine, &b"POST /x"[..])]),
            ],
        };
        let report = Linter::new().lint(&set);
        assert!(report.len() >= 2);
        assert_eq!(report[0].severity, Severity::Error);
        assert!(contains_code(&report, Code::MissingAnchor));
        assert!(contains_code(&report, Code::BoilerplateToken));
        let first_warning = report
            .iter()
            .position(|d| d.severity == Severity::Warning)
            .unwrap();
        assert!(report[..first_warning]
            .iter()
            .all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn report_order_is_deterministic_and_code_sorted() {
        use leaksig_core::signature::Field as F;
        // Hand-shuffled findings at mixed severities: sorting must give
        // severity-major, then code, then signature id, then field.
        let mk = |code: Code, id: Option<u32>, field: Option<F>| {
            let mut d = Diagnostic::new(code, "m");
            d.signature_id = id;
            d.field = field;
            d
        };
        let mut a = vec![
            mk(Code::BoilerplateToken, Some(2), Some(F::Body)),
            mk(Code::MissingAnchor, Some(9), None),
            mk(Code::BoilerplateToken, Some(2), Some(F::Cookie)),
            mk(Code::DuplicateId, Some(1), None),
            mk(Code::MissingAnchor, Some(3), None),
        ];
        let mut b: Vec<Diagnostic> = a.iter().rev().cloned().collect();
        sort_findings(&mut a);
        sort_findings(&mut b);
        assert_eq!(a, b, "order must not depend on input order");
        let keys: Vec<(&str, Option<u32>)> = a
            .iter()
            .map(|d| (d.code.as_str(), d.signature_id))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("L003", Some(3)),
                ("L003", Some(9)),
                ("L012", Some(1)),
                ("L004", Some(2)),
                ("L004", Some(2)),
            ]
        );
        // Field breaks the tie between the two L004 findings on sig 2.
        assert_eq!(a[3].field, Some(F::Body));
        assert_eq!(a[4].field, Some(F::Cookie));
    }

    #[test]
    fn policy_rows_are_checked() {
        let set = SignatureSet {
            signatures: vec![sig(
                3,
                vec![FieldToken::new(Field::Body, &b"udid=dd72cbaeab8d2e44"[..])],
            )],
        };
        let rows = vec![("app.x".to_string(), 44, true)];
        let report = Linter::new().lint_with_policy(&set, &rows);
        assert!(contains_code(&report, Code::UnknownPolicySignature));
        assert!(has_errors(&report));
    }

    #[test]
    fn counts() {
        let d = vec![
            Diagnostic::new(Code::MissingAnchor, "x"),
            Diagnostic::new(Code::BoilerplateToken, "y"),
        ];
        assert_eq!(count_at(&d, Severity::Error), 1);
        assert_eq!(count_at(&d, Severity::Warning), 1);
    }
}
