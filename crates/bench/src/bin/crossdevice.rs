//! **Cross-device generalization** (ours): the paper captures traffic on
//! ONE handset, and its signatures embed that handset's identifier values
//! (raw and hashed). What happens when those signatures meet the traffic
//! of a *different* device running the same app population?
//!
//! Method: generate the market for device A, train signatures on it, then
//! re-render the *identical* market (same apps, destinations, templates,
//! quotas) with device B's identifiers and measure detection. Tokens
//! split into two populations: identifier-value tokens (device-specific,
//! dead on B) and module-template tokens (device-independent, alive).
//!
//! ```text
//! cargo run --release -p leaksig-bench --bin crossdevice
//! ```

use leaksig_core::prelude::*;
use leaksig_netsim::{Dataset, DeviceProfile, MarketConfig, MarketModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rates(detector: &Detector, data: &Dataset) -> (f64, f64) {
    let (mut tp, mut fns, mut fp, mut tn) = (0usize, 0usize, 0usize, 0usize);
    for p in &data.packets {
        let hit = detector.match_packet(&p.packet).is_some();
        match (p.is_sensitive(), hit) {
            (true, true) => tp += 1,
            (true, false) => fns += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
        }
    }
    (
        tp as f64 / (tp + fns).max(1) as f64,
        fp as f64 / (fp + tn).max(1) as f64,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.25);

    eprintln!("building market for device A (seed {seed}, scale {scale})...");
    let model_a = MarketModel::build(MarketConfig::scaled(seed, scale));
    let device_b = DeviceProfile::generate(&mut StdRng::seed_from_u64(seed ^ 0xdee_f1ce));
    let model_b = model_a.clone().with_device(device_b);
    let data_a = Dataset::render(model_a);
    let data_b = Dataset::render(model_b);

    // Train on device A's capture.
    let packets_a: Vec<&leaksig_http::HttpPacket> =
        data_a.packets.iter().map(|p| &p.packet).collect();
    let labels_a: Vec<bool> = data_a.packets.iter().map(|p| p.is_sensitive()).collect();
    let n = ((300.0 * scale).round() as usize).max(20);
    let out = run_experiment_refs(&packets_a, &labels_a, n, &PipelineConfig::default());
    let detector = Detector::new(out.signatures.clone());

    // Token split: which signatures survive with a device-independent
    // anchor?
    let values_a = data_a.model.device.all_values();
    let value_bound = out
        .signatures
        .signatures
        .iter()
        .filter(|s| {
            s.tokens.iter().all(|t| {
                values_a.iter().any(|(_, v)| {
                    t.bytes()
                        .windows(v.len().min(t.bytes().len()).max(1))
                        .any(|w| w == v.as_bytes())
                }) || t.bytes().len() < 10
            })
        })
        .count();

    let (tp_a, fp_a) = rates(&detector, &data_a);
    let (tp_b, fp_b) = rates(&detector, &data_b);

    println!("Cross-device generalization (N = {n}, scale {scale})\n");
    println!(
        "{} signatures; {} are identifier-value-bound",
        out.signatures.len(),
        value_bound
    );
    println!();
    println!(
        "{:<28} {:>10} {:>10}",
        "evaluation target", "recall", "fp rate"
    );
    println!("{}", "-".repeat(52));
    println!(
        "{:<28} {:>9.1}% {:>9.1}%",
        "device A (training device)",
        100.0 * tp_a,
        100.0 * fp_a
    );
    println!(
        "{:<28} {:>9.1}% {:>9.1}%",
        "device B (unseen device)",
        100.0 * tp_b,
        100.0 * fp_b
    );
    println!("{}", "-".repeat(52));
    println!(
        "\nreading: signatures anchored on identifier values are per-device\n\
         by construction — the deployment in Fig. 3 implies a per-device\n\
         payload check and per-population signature refresh, not a global\n\
         signature set. Template-anchored signatures transfer; value-anchored\n\
         ones must be regenerated from each fleet's own suspicious sample."
    );
}
