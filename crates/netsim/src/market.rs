//! The market planner: turns the declarative [`MarketPlan`] into a
//! concrete assignment of apps, permissions, leak groups, destinations and
//! per-(app, domain) packet quotas.
//!
//! Everything is driven by one seeded RNG, so a `(seed, scale)` pair
//! always produces the identical market. `scale` shrinks the whole plan
//! proportionally (apps, packets, group sizes, domain counts) for fast
//! tests; `scale = 1.0` is the paper-sized dataset.

use crate::device::{DeviceProfile, SensitiveKind};
use crate::names;
use crate::orgs::OrgRegistry;
use crate::permissions::{Permission, PermissionSet};
use crate::plan::{AppPool, DomainPlan, MarketPlan, MinorGroupPlan, TrafficStyle, TOTAL_PACKETS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::net::Ipv4Addr;

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct MarketConfig {
    /// Master seed; every derived choice flows from it.
    pub seed: u64,
    /// Proportional size factor. `1.0` reproduces the paper's dataset
    /// (1,188 apps / 107,859 packets); `0.1` gives a ~10k-packet market
    /// with the same structure.
    pub scale: f64,
}

impl MarketConfig {
    /// Paper-sized market.
    pub fn paper(seed: u64) -> Self {
        MarketConfig { seed, scale: 1.0 }
    }

    /// Scaled-down market for tests and quick runs.
    pub fn scaled(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        MarketConfig { seed, scale }
    }

    fn n(&self, count: usize) -> usize {
        ((count as f64 * self.scale).round() as usize).max(1)
    }
}

/// One synthesized application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Stable identifier.
    pub id: usize,
    /// Display name.
    pub name: String,
    /// Package id.
    pub package: String,
    /// Vendor word reused in the app's own filler hostnames.
    pub vendor: String,
    /// App-local mutable identifier (the UUID alternative to UDIDs).
    pub uuid: String,
    /// Requested permission set.
    pub permissions: PermissionSet,
    /// True for apps that hold INTERNET plus permissions outside the four
    /// tracked ones; Table I's "INTERNET only" row excludes them.
    pub untracked_extras: bool,
    /// Target number of distinct destinations (Fig. 2 budget).
    pub dest_budget: usize,
}

/// A realized destination with its per-app packet quotas.
#[derive(Debug, Clone)]
pub struct DomainModel {
    /// Destination host (FQDN).
    pub host: String,
    /// Destination IPv4 address.
    pub ip: Ipv4Addr,
    /// Traffic rendering style.
    pub style: TrafficStyle,
    /// Kinds this destination's module can transmit (gated per app by
    /// group membership).
    pub leaks: Vec<SensitiveKind>,
    /// Appears in Table II.
    pub listed: bool,
    /// `(app id, packet count)`, every count ≥ 1.
    pub per_app: Vec<(usize, usize)>,
}

/// The fully planned market.
#[derive(Debug, Clone)]
pub struct MarketModel {
    /// Distance configuration in force.
    pub config: MarketConfig,
    /// Seed the plan and templates derive from.
    pub plan_seed: u64,
    /// The capture device’s identity.
    pub device: DeviceProfile,
    /// Distinct applications observed.
    pub apps: Vec<AppSpec>,
    /// Leak-group membership per sensitive kind.
    pub groups: BTreeMap<SensitiveKind, BTreeSet<usize>>,
    /// All destinations: majors, minor leak domains, then filler hosts.
    pub domains: Vec<DomainModel>,
    /// IP/organisation allocations.
    pub registry: OrgRegistry,
}

impl MarketModel {
    /// Build the market for `config`.
    pub fn build(config: MarketConfig) -> MarketModel {
        Planner::new(config).run()
    }

    /// Whether packets from `app` to a domain leaking `kind` carry it.
    pub fn app_leaks(&self, app: usize, kind: SensitiveKind) -> bool {
        self.groups.get(&kind).is_some_and(|g| g.contains(&app))
    }

    /// The same market (apps, destinations, quotas, templates) as seen
    /// from a different handset: identifiers change, structure does not.
    /// Used by the cross-device generalization experiment.
    pub fn with_device(mut self, device: DeviceProfile) -> MarketModel {
        self.device = device;
        self
    }

    /// Distinct destination count per app (Fig. 2's variable).
    pub fn destinations_per_app(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.apps.len()];
        for d in &self.domains {
            for &(app, _) in &d.per_app {
                counts[app] += 1;
            }
        }
        counts
    }

    /// Total planned packets across all destinations.
    pub fn total_packets(&self) -> usize {
        self.domains
            .iter()
            .map(|d| d.per_app.iter().map(|&(_, n)| n).sum::<usize>())
            .sum()
    }
}

/// Round-robin supplier over a shuffled group; guarantees full coverage
/// once the number of requested slots reaches the group size.
struct Cycler {
    members: Vec<usize>,
    pos: usize,
}

impl Cycler {
    fn new(mut members: Vec<usize>, rng: &mut StdRng) -> Self {
        members.shuffle(rng);
        Cycler { members, pos: 0 }
    }

    /// Up to `n` distinct members, continuing round-robin across calls.
    fn take(&mut self, n: usize) -> Vec<usize> {
        let n = n.min(self.members.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if self.pos == self.members.len() {
                self.pos = 0;
            }
            out.push(self.members[self.pos]);
            self.pos += 1;
        }
        out
    }
}

/// Split `total` into `weights.len()` nonneg integers with the given
/// minimums, proportional to weights, summing exactly to `total`
/// (largest-remainder rounding). Panics if the minimums exceed `total`.
fn allocate_exact(total: usize, weights: &[f64], min_each: usize) -> Vec<usize> {
    let n = weights.len();
    assert!(n > 0, "allocate_exact needs at least one bucket");
    assert!(
        min_each * n <= total,
        "minimums {min_each}x{n} exceed total {total}"
    );
    let spread = total - min_each * n;
    let wsum: f64 = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    let shares: Vec<f64> = weights.iter().map(|w| w / wsum * spread as f64).collect();
    let mut out: Vec<usize> = shares.iter().map(|s| s.floor() as usize).collect();
    let assigned: usize = out.iter().sum();
    // Distribute the remainder to the largest fractional parts.
    let mut frac: Vec<(usize, f64)> = shares
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s - s.floor()))
        .collect();
    frac.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for &(i, _) in frac.iter().take(spread - assigned) {
        out[i] += 1;
    }
    for v in &mut out {
        *v += min_each;
    }
    out
}

struct Planner {
    config: MarketConfig,
    rng: StdRng,
    plan: MarketPlan,
}

impl Planner {
    fn new(config: MarketConfig) -> Self {
        Planner {
            rng: StdRng::seed_from_u64(config.seed),
            plan: MarketPlan::paper(config.seed),
            config,
        }
    }

    fn run(mut self) -> MarketModel {
        let device = DeviceProfile::generate(&mut self.rng);
        let apps = self.build_apps();
        let internet: Vec<usize> = apps
            .iter()
            .filter(|a| a.permissions.has(Permission::Internet))
            .map(|a| a.id)
            .collect();
        let phone_state: Vec<usize> = apps
            .iter()
            .filter(|a| a.permissions.has(Permission::ReadPhoneState))
            .map(|a| a.id)
            .collect();
        let multi_dest: Vec<usize> = apps
            .iter()
            .filter(|a| a.dest_budget >= 2)
            .map(|a| a.id)
            .collect();
        let internet_multi: Vec<usize> = internet
            .iter()
            .copied()
            .filter(|&a| apps[a].dest_budget >= 2)
            .collect();
        let phone_state_multi: Vec<usize> = phone_state
            .iter()
            .copied()
            .filter(|&a| apps[a].dest_budget >= 2)
            .collect();
        let _ = &multi_dest;
        let groups = self.build_groups(&internet_multi, &phone_state_multi);
        let mut apps = apps;
        self.boost_budgets(&mut apps, &groups);

        let mut registry = OrgRegistry::new();
        let mut used_hosts: HashSet<String> = HashSet::new();
        let mut remaining: Vec<i64> = apps.iter().map(|a| a.dest_budget as i64).collect();
        let mut cyclers: BTreeMap<SensitiveKind, Cycler> = groups
            .iter()
            .map(|(&k, members)| {
                (
                    k,
                    Cycler::new(members.iter().copied().collect(), &mut self.rng),
                )
            })
            .collect();

        let mut domains: Vec<DomainModel> = Vec::new();

        // Majors: Table II rows with exact packet and app quotas.
        let majors = std::mem::take(&mut self.plan.majors);
        for d in &majors {
            let model = self.realize_major(
                d,
                &internet,
                &groups,
                &mut cyclers,
                &mut remaining,
                &mut registry,
            );
            used_hosts.insert(model.host.clone());
            domains.push(model);
        }

        // Minor leak domains.
        let minors = std::mem::take(&mut self.plan.minors);
        for g in &minors {
            self.realize_minor_group(
                g,
                &mut cyclers,
                &mut remaining,
                &mut registry,
                &mut used_hosts,
                &mut domains,
            );
        }

        // Filler: top destination counts up to each app's budget and the
        // packet count up to the dataset total.
        self.realize_filler(
            &apps,
            &mut remaining,
            &mut registry,
            &mut used_hosts,
            &mut domains,
        );

        MarketModel {
            plan_seed: self.config.seed,
            config: self.config,
            device,
            apps,
            groups,
            domains,
            registry,
        }
    }

    fn build_apps(&mut self) -> Vec<AppSpec> {
        let c = self.config;
        // Permission rows: the five printed Table I rows, then the two
        // reconciliation rows that make the paper's 25%/61% statements
        // come out (see DESIGN.md): 74 apps with INTERNET+CONTACTS and 159
        // with INTERNET plus untracked extras.
        use Permission::*;
        let rows: Vec<(PermissionSet, usize, bool)> = vec![
            (PermissionSet::of(&[Internet]), 302, false),
            (PermissionSet::of(&[Internet, Location]), 329, false),
            (
                PermissionSet::of(&[Internet, Location, ReadPhoneState]),
                153,
                false,
            ),
            (PermissionSet::of(&[Internet, ReadPhoneState]), 148, false),
            (
                PermissionSet::of(&[Internet, Location, ReadPhoneState, ReadContacts]),
                23,
                false,
            ),
            (PermissionSet::of(&[Internet, ReadContacts]), 74, false),
            (PermissionSet::of(&[Internet]), 159, true),
        ];
        let mut perm_list: Vec<(PermissionSet, bool)> = Vec::new();
        for (set, count, extras) in rows {
            for _ in 0..c.n(count) {
                perm_list.push((set, extras));
            }
        }
        perm_list.shuffle(&mut self.rng);

        let mut apps = Vec::with_capacity(perm_list.len());
        for (id, (permissions, extras)) in perm_list.into_iter().enumerate() {
            let name = names::app_name(&mut self.rng);
            let package = names::package_name(&mut self.rng, &name);
            let vendor = name.split(' ').next().unwrap_or("app").to_string();
            let uuid: String = (0..16)
                .map(|_| char::from_digit(self.rng.random_range(0..16u32), 16).unwrap())
                .collect();
            apps.push(AppSpec {
                id,
                name,
                package,
                vendor,
                uuid,
                permissions,
                untracked_extras: extras,
                dest_budget: self.sample_budget(),
            });
        }
        // Exactly one "embedded browser" app with the maximum fan-out.
        let browser = self.rng.random_range(0..apps.len());
        apps[browser].dest_budget = c.n(84).max(3);
        apps
    }

    /// Destination-count budget per app, shaped to Fig. 2: ~7% single-
    /// destination apps, lognormal body with mean ≈ 8.4, p90 ≈ 15.
    fn sample_budget(&mut self) -> usize {
        if self.rng.random_bool(0.07) {
            return 1;
        }
        // Box–Muller normal; rand itself ships no distributions.
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let v = (1.89 + 0.60 * z).exp();
        (v.round() as usize).clamp(2, 45)
    }

    fn build_groups(
        &mut self,
        internet: &[usize],
        phone_state: &[usize],
    ) -> BTreeMap<SensitiveKind, BTreeSet<usize>> {
        use SensitiveKind::*;
        let c = self.config;
        let pick = |pool: &[usize], n: usize, rng: &mut StdRng| -> BTreeSet<usize> {
            let n = n.min(pool.len());
            let mut shuffled = pool.to_vec();
            shuffled.shuffle(rng);
            shuffled.truncate(n);
            shuffled.into_iter().collect()
        };

        let mut rng = StdRng::seed_from_u64(self.rng.random());
        let imei = pick(phone_state, c.n(171), &mut rng);
        let imei_vec: Vec<usize> = imei.iter().copied().collect();
        let imsi = pick(&imei_vec, c.n(16), &mut rng);
        let sim_pool: Vec<usize> = imei_vec
            .iter()
            .copied()
            .filter(|a| !imsi.contains(a))
            .collect();
        let sim = pick(&sim_pool, c.n(13), &mut rng);
        let imei_md5 = pick(phone_state, c.n(59), &mut rng);
        let imei_sha1 = pick(phone_state, c.n(51), &mut rng);

        let aid_md5 = pick(internet, c.n(433), &mut rng);
        let aid_md5_vec: Vec<usize> = aid_md5.iter().copied().collect();
        // AndroidId (plain) group: mostly IMEI apps so the four
        // "IMEI and Android ID" domains produce co-leaking packets.
        let from_imei = pick(&imei_vec, c.n(12), &mut rng);
        let rest_pool: Vec<usize> = internet
            .iter()
            .copied()
            .filter(|a| !from_imei.contains(a))
            .collect();
        let mut aid: BTreeSet<usize> = from_imei;
        aid.extend(pick(
            &rest_pool,
            c.n(21).saturating_sub(aid.len()).max(1),
            &mut rng,
        ));
        let aid_sha1 = pick(internet, c.n(47), &mut rng);

        // Carrier: ~90 AidMd5 apps (carrier rides along on hashed-id ad
        // requests) + all SIM apps + a remainder from the whole market.
        let mut carrier: BTreeSet<usize> = pick(&aid_md5_vec, c.n(80), &mut rng);
        carrier.extend(sim.iter().copied());
        let others: Vec<usize> = internet
            .iter()
            .copied()
            .filter(|a| !carrier.contains(a))
            .collect();
        let shortfall = c.n(135).saturating_sub(carrier.len()).max(1);
        carrier.extend(pick(&others, shortfall, &mut rng));

        let mut groups = BTreeMap::new();
        groups.insert(AndroidId, aid);
        groups.insert(AndroidIdMd5, aid_md5);
        groups.insert(AndroidIdSha1, aid_sha1);
        groups.insert(Carrier, carrier);
        groups.insert(Imei, imei);
        groups.insert(ImeiMd5, imei_md5);
        groups.insert(ImeiSha1, imei_sha1);
        groups.insert(Imsi, imsi);
        groups.insert(SimSerial, sim);
        groups
    }

    /// Group members need room in their destination budgets for the leak
    /// domains the plan will route through them.
    fn boost_budgets(
        &mut self,
        apps: &mut [AppSpec],
        groups: &BTreeMap<SensitiveKind, BTreeSet<usize>>,
    ) {
        use SensitiveKind::*;
        let floors: &[(SensitiveKind, usize)] = &[
            (AndroidId, 11),
            (Imsi, 4),
            (SimSerial, 4),
            (ImeiMd5, 3),
            (ImeiSha1, 3),
            (AndroidIdSha1, 3),
            (Imei, 3),
            (AndroidIdMd5, 2),
        ];
        for &(kind, floor) in floors {
            if let Some(members) = groups.get(&kind) {
                for &a in members {
                    let jitter = self.rng.random_range(0..3usize);
                    apps[a].dest_budget = apps[a].dest_budget.max(floor + jitter);
                }
            }
        }
    }

    fn realize_major(
        &mut self,
        d: &DomainPlan,
        internet: &[usize],
        groups: &BTreeMap<SensitiveKind, BTreeSet<usize>>,
        cyclers: &mut BTreeMap<SensitiveKind, Cycler>,
        remaining: &mut [i64],
        registry: &mut OrgRegistry,
    ) -> DomainModel {
        let mut chosen: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        // Members of every leaked kind's group are barred from Any picks:
        // an accidental group member chosen through the Any pool would
        // leak and silently inflate the kind's Table III packet count.
        let leak_members: HashSet<usize> = d
            .leaks
            .iter()
            .flat_map(|k| groups[k].iter().copied())
            .collect();
        for &(pool, quota) in &d.sources {
            let quota = self.config.n(quota);
            match pool {
                AppPool::Group(kind) => {
                    let cy = cyclers.get_mut(&kind).expect("group exists");
                    let mut got = 0;
                    // Cycle until quota distinct-for-this-domain members
                    // are found (bounded by two full passes).
                    let limit = quota * 2 + cy.members.len();
                    let mut tries = 0;
                    while got < quota && tries < limit {
                        for a in cy.take(1) {
                            tries += 1;
                            if seen.insert(a) {
                                chosen.push(a);
                                got += 1;
                            }
                        }
                        if cy.members.iter().all(|a| seen.contains(a)) {
                            break; // group exhausted for this domain
                        }
                    }
                }
                AppPool::Any => {
                    let banned: HashSet<usize> = seen.union(&leak_members).copied().collect();
                    let picked = self.weighted_pick(internet, quota, &banned, remaining);
                    for a in picked {
                        seen.insert(a);
                        chosen.push(a);
                    }
                }
            }
        }
        for &a in &chosen {
            remaining[a] -= 1;
        }

        let packets = self.config.n(d.packets).max(chosen.len());
        let weights: Vec<f64> = chosen
            .iter()
            .map(|_| 0.3 + self.rng.random::<f64>().powi(2) * 3.0)
            .collect();
        let alloc = allocate_exact(packets, &weights, 1);
        let ip = registry.register(&d.host, false);

        DomainModel {
            host: d.host.clone(),
            ip,
            style: d.style,
            leaks: d.leaks.clone(),
            listed: d.listed,
            per_app: chosen.into_iter().zip(alloc).collect(),
        }
    }

    /// Weighted sample (by remaining destination budget) without
    /// replacement, excluding `seen`. Uses exponential-race keys.
    fn weighted_pick(
        &mut self,
        pool: &[usize],
        n: usize,
        seen: &HashSet<usize>,
        remaining: &[i64],
    ) -> Vec<usize> {
        let mut keyed: Vec<(f64, usize)> = pool
            .iter()
            .copied()
            .filter(|a| !seen.contains(a))
            .map(|a| {
                let w = (remaining[a].max(0) as f64) + 0.02;
                let u: f64 = self.rng.random::<f64>().max(1e-12);
                (-u.ln() / w, a)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        keyed.truncate(n);
        keyed.into_iter().map(|(_, a)| a).collect()
    }

    fn realize_minor_group(
        &mut self,
        g: &MinorGroupPlan,
        cyclers: &mut BTreeMap<SensitiveKind, Cycler>,
        remaining: &mut [i64],
        registry: &mut OrgRegistry,
        used_hosts: &mut HashSet<String>,
        out: &mut Vec<DomainModel>,
    ) {
        let c = self.config;
        let domain_count = c.n(g.domains);
        let hosts: Vec<String> = (0..domain_count)
            .map(|_| loop {
                let h = names::ad_host(&mut self.rng);
                if used_hosts.insert(h.clone()) {
                    break h;
                }
            })
            .collect();

        // Apps per domain, then a packet split that respects them.
        let apps_per: Vec<usize> = hosts
            .iter()
            .map(|_| {
                self.rng
                    .random_range(g.apps_per_domain.0..=g.apps_per_domain.1)
            })
            .collect();
        // Heavy-tailed per-domain packet mass (ad-network traffic is
        // Zipf-like): a few shops in each group carry most packets, the
        // rest form a long thin tail.
        let weights: Vec<f64> = hosts
            .iter()
            .map(|_| (0.08 + self.rng.random::<f64>()).powf(-2.5).min(1200.0))
            .collect();
        let min_apps = *apps_per.iter().max().unwrap_or(&1);
        let total_packets = c.n(g.packets).max(min_apps * domain_count);
        let per_domain_packets = allocate_exact(total_packets, &weights, min_apps);

        for ((host, k), packets) in hosts.iter().zip(apps_per).zip(per_domain_packets) {
            let cy = cyclers.get_mut(&g.pool).expect("group exists");
            let mut members: Vec<usize> = Vec::new();
            let mut seen = HashSet::new();
            let limit = k * 2 + cy.members.len();
            let mut tries = 0;
            while members.len() < k && tries < limit {
                for a in cy.take(1) {
                    tries += 1;
                    if seen.insert(a) {
                        members.push(a);
                    }
                }
                if cy.members.iter().all(|a| seen.contains(a)) {
                    break;
                }
            }
            for &a in &members {
                remaining[a] -= 1;
            }
            let w: Vec<f64> = members
                .iter()
                .map(|_| 0.5 + self.rng.random::<f64>())
                .collect();
            let alloc = allocate_exact(packets, &w, 1);
            // ~12% of minor ad shops sit on shared hosting (the §VI
            // "close IP, different org" hazard).
            let shared = self.rng.random_bool(0.12);
            let ip = registry.register(host, shared);
            out.push(DomainModel {
                host: host.clone(),
                ip,
                style: TrafficStyle::Ad,
                leaks: g.leaks.clone(),
                listed: false,
                per_app: members.into_iter().zip(alloc).collect(),
            });
        }
    }

    fn realize_filler(
        &mut self,
        apps: &[AppSpec],
        remaining: &mut [i64],
        registry: &mut OrgRegistry,
        used_hosts: &mut HashSet<String>,
        out: &mut Vec<DomainModel>,
    ) {
        let planned: usize = out
            .iter()
            .map(|d| d.per_app.iter().map(|&(_, n)| n).sum::<usize>())
            .sum();
        let target_total = self.config.n(TOTAL_PACKETS);
        let filler_budget = target_total.saturating_sub(planned);

        // Which apps still need destinations. Apps with zero assigned
        // destinations get at least one so every app appears in Fig. 2.
        let mut assigned = vec![false; apps.len()];
        for d in out.iter() {
            for &(a, _) in &d.per_app {
                assigned[a] = true;
            }
        }
        let mut pairs: Vec<(usize, String)> = Vec::new();
        for app in apps {
            let mut want = remaining[app.id].max(0) as usize;
            if !assigned[app.id] {
                want = want.max(1);
            }
            for _ in 0..want {
                let host = loop {
                    let h = names::filler_host(&mut self.rng, &app.vendor);
                    if used_hosts.insert(h.clone()) {
                        break h;
                    }
                };
                pairs.push((app.id, host));
            }
            remaining[app.id] = 0;
        }
        if pairs.is_empty() {
            return;
        }
        // Every filler pair carries at least one packet; drop pairs if the
        // packet budget is too small (only possible at tiny scales).
        let usable = pairs.len().min(filler_budget.max(1));
        pairs.truncate(usable);
        let weights: Vec<f64> = pairs
            .iter()
            .map(|_| 0.2 + self.rng.random::<f64>().powi(3) * 6.0)
            .collect();
        let alloc = allocate_exact(filler_budget.max(pairs.len()), &weights, 1);

        for ((app, host), packets) in pairs.into_iter().zip(alloc) {
            let style = if self.rng.random_bool(0.55) {
                TrafficStyle::Content
            } else {
                TrafficStyle::Api
            };
            let ip = registry.register(&host, false);
            out.push(DomainModel {
                host,
                ip,
                style,
                leaks: Vec::new(),
                listed: false,
                per_app: vec![(app, packets)],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MarketModel {
        MarketModel::build(MarketConfig::scaled(42, 0.08))
    }

    #[test]
    fn deterministic_under_seed() {
        let a = MarketModel::build(MarketConfig::scaled(7, 0.05));
        let b = MarketModel::build(MarketConfig::scaled(7, 0.05));
        assert_eq!(a.apps.len(), b.apps.len());
        assert_eq!(a.total_packets(), b.total_packets());
        assert_eq!(a.domains.len(), b.domains.len());
        for (x, y) in a.domains.iter().zip(&b.domains) {
            assert_eq!(x.host, y.host);
            assert_eq!(x.per_app, y.per_app);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = MarketModel::build(MarketConfig::scaled(1, 0.05));
        let b = MarketModel::build(MarketConfig::scaled(2, 0.05));
        let hosts_a: Vec<&str> = a.domains.iter().map(|d| d.host.as_str()).collect();
        let hosts_b: Vec<&str> = b.domains.iter().map(|d| d.host.as_str()).collect();
        assert_ne!(hosts_a, hosts_b);
    }

    #[test]
    fn total_packets_tracks_scale() {
        let m = small();
        let want = TOTAL_PACKETS as f64 * 0.08;
        let got = m.total_packets() as f64;
        assert!(
            (got - want).abs() / want < 0.08,
            "packets {got} vs target {want}"
        );
    }

    #[test]
    fn every_app_has_a_destination() {
        let m = small();
        let per_app = m.destinations_per_app();
        assert_eq!(per_app.len(), m.apps.len());
        assert!(per_app.iter().all(|&c| c >= 1));
    }

    #[test]
    fn per_app_packet_quotas_are_positive() {
        let m = small();
        for d in &m.domains {
            assert!(!d.per_app.is_empty(), "{} has no apps", d.host);
            for &(app, n) in &d.per_app {
                assert!(n >= 1, "{}: app {app} got zero packets", d.host);
                assert!(app < m.apps.len());
            }
            // No duplicate apps within a domain.
            let distinct: HashSet<usize> = d.per_app.iter().map(|&(a, _)| a).collect();
            assert_eq!(distinct.len(), d.per_app.len(), "{}", d.host);
        }
    }

    #[test]
    fn leak_domains_draw_from_their_groups() {
        let m = small();
        for d in m
            .domains
            .iter()
            .filter(|d| !d.leaks.is_empty() && !d.listed)
        {
            // Minor leak domains source exclusively from the pool group,
            // so every app must belong to at least one leaked kind's group.
            for &(app, _) in &d.per_app {
                assert!(
                    d.leaks.iter().any(|&k| m.app_leaks(app, k)),
                    "{}: app {app} leaks none of {:?}",
                    d.host,
                    d.leaks
                );
            }
        }
    }

    #[test]
    fn phone_state_kinds_only_in_phone_state_apps() {
        let m = small();
        for (&kind, members) in &m.groups {
            if kind.needs_phone_state() {
                for &a in members {
                    assert!(
                        m.apps[a].permissions.has(Permission::ReadPhoneState),
                        "{kind:?} app {a} lacks READ_PHONE_STATE"
                    );
                }
            }
        }
    }

    #[test]
    fn table_i_rows_exact_at_full_counts() {
        // Scale 1.0 app synthesis is cheap even though packets aren't
        // generated here.
        let m = MarketModel::build(MarketConfig::scaled(3, 1.0));
        let count = |set: PermissionSet, extras: bool| {
            m.apps
                .iter()
                .filter(|a| a.permissions == set && a.untracked_extras == extras)
                .count()
        };
        use Permission::*;
        assert_eq!(count(PermissionSet::of(&[Internet]), false), 302);
        assert_eq!(count(PermissionSet::of(&[Internet, Location]), false), 329);
        assert_eq!(
            count(
                PermissionSet::of(&[Internet, Location, ReadPhoneState]),
                false
            ),
            153
        );
        assert_eq!(
            count(PermissionSet::of(&[Internet, ReadPhoneState]), false),
            148
        );
        assert_eq!(m.apps.len(), 1188);
    }

    #[test]
    fn allocate_exact_properties() {
        let out = allocate_exact(100, &[1.0, 2.0, 3.0, 4.0], 5);
        assert_eq!(out.iter().sum::<usize>(), 100);
        assert!(out.iter().all(|&v| v >= 5));
        assert!(out[3] > out[0]);

        let exact = allocate_exact(7, &[1.0; 7], 1);
        assert_eq!(exact, vec![1; 7]);
    }

    #[test]
    #[should_panic(expected = "minimums")]
    fn allocate_exact_rejects_infeasible() {
        let _ = allocate_exact(3, &[1.0, 1.0], 2);
    }
}
