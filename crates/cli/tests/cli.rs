//! End-to-end CLI test: market → check → generate → detect → inspect,
//! exercising the real binary and the on-disk file formats.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_leaksig-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn leaksig-cli");
    assert!(
        out.status.success(),
        "command {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_workflow() {
    let dir = std::env::temp_dir().join(format!("leaksig-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let (cap, dev, sigs) = (path("cap.lsc"), path("device.txt"), path("sigs.txt"));

    // market
    let out = run_ok(&[
        "market", "--out", &cap, "--device", &dev, "--seed", "7", "--scale", "0.03",
    ]);
    assert!(out.contains("wrote"), "{out}");
    assert!(std::fs::metadata(&cap).unwrap().len() > 10_000);

    // check
    let out = run_ok(&["check", "--capture", &cap, "--device", &dev]);
    assert!(out.contains("suspicious"), "{out}");
    let suspicious: usize = out
        .split_whitespace()
        .zip(out.split_whitespace().skip(1))
        .find(|(_, w)| *w == "suspicious,")
        .map(|(n, _)| n.parse().unwrap())
        .expect("suspicious count in output");
    assert!(suspicious > 100, "only {suspicious} suspicious packets");

    // generate
    let out = run_ok(&[
        "generate",
        "--capture",
        &cap,
        "--device",
        &dev,
        "--out",
        &sigs,
        "--n",
        "80",
    ]);
    assert!(out.contains("signatures written"), "{out}");
    let sig_text = std::fs::read_to_string(&sigs).unwrap();
    assert!(sig_text.starts_with("LEAKSIG/1"));

    // detect (with evaluation)
    let out = run_ok(&[
        "detect",
        "--capture",
        &cap,
        "--sigs",
        &sigs,
        "--device",
        &dev,
    ]);
    assert!(out.contains("matched"), "{out}");
    assert!(out.contains("evaluation: TP"), "{out}");
    // TP should be substantial at this scale.
    let tp: f64 = out
        .split("TP ")
        .nth(1)
        .and_then(|s| s.split('%').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("TP in output");
    assert!(tp > 50.0, "TP {tp}% too low; output:\n{out}");

    // inspect
    let out = run_ok(&["inspect", "--sigs", &sigs]);
    assert!(out.contains("signature 0"), "{out}");

    // lint: the freshly generated set must carry zero errors (exit 0).
    let out = run_ok(&["lint", "--sigs", &sigs]);
    assert!(out.contains("0 errors"), "{out}");

    // gate replay with a block-everything user
    let out = run_ok(&[
        "gate",
        "--capture",
        &cap,
        "--sigs",
        &sigs,
        "--policy",
        "block",
    ]);
    assert!(out.contains("replayed"), "{out}");
    assert!(out.contains("blocked"), "{out}");
    let blocked: usize = out
        .split_whitespace()
        .zip(out.split_whitespace().skip(1))
        .find(|(_, w)| *w == "blocked,")
        .map(|(n, _)| n.parse().unwrap())
        .expect("blocked count");
    assert!(blocked > 50, "only {blocked} blocked");

    std::fs::remove_dir_all(&dir).ok();
}

/// `lint` against a known-bad set: generate a clean set from a netsim
/// capture, inject a §VI pathological signature (boilerplate-only
/// `POST /xyz` anchor, far below the minimum anchor length), and assert
/// the expected diagnostic code and exit status in both output formats.
#[test]
fn lint_flags_injected_generic_signature() {
    let dir = std::env::temp_dir().join(format!("leaksig-lint-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let (cap, dev, sigs) = (path("cap.lsc"), path("device.txt"), path("sigs.txt"));

    run_ok(&[
        "market", "--out", &cap, "--device", &dev, "--seed", "11", "--scale", "0.03",
    ]);
    run_ok(&[
        "generate", "--capture", &cap, "--device", &dev, "--out", &sigs, "--n", "80",
    ]);

    // Clean set: exit 0 in both formats, stable JSON schema.
    let out = run_ok(&["lint", "--sigs", &sigs]);
    assert!(out.contains("0 errors"), "{out}");
    let out = run_ok(&["lint", "--sigs", &sigs, "--format", "json"]);
    assert!(out.starts_with(r#"{"version":1,"errors":0,"#), "{out}");

    // Inject a §VI hazard: "POST /xyz" (9 bytes, all boilerplate-ish, no
    // anchor) as an extra signature appended in wire format.
    let mut text = std::fs::read_to_string(&sigs).unwrap();
    text.push_str("sig 99 2\ntok rline 504f5354202f78797a 0\nend\n");
    let bad = path("bad-sigs.txt");
    std::fs::write(&bad, text).unwrap();

    // Text format: exit 1, the anchor diagnostic named by code.
    let out = bin().args(["lint", "--sigs", &bad]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[L003] sig 99"), "{stdout}");
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("usage"),
        "findings must not print usage"
    );

    // JSON format: exit 1, schema-stable keys in fixed order.
    let out = bin()
        .args(["lint", "--sigs", &bad, "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with(r#"{"version":1,"errors":"#), "{stdout}");
    assert!(stdout.contains(r#""diagnostics":[{"code":"#), "{stdout}");
    assert!(
        stdout.contains(
            r#""code":"L003","severity":"error","signature_id":99,"field":null,"message":"#
        ),
        "{stdout}"
    );

    // A bad --format value is a usage error, not a lint finding.
    let out = bin()
        .args(["lint", "--sigs", &bad, "--format", "yaml"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let out = bin().args(["wat"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin().args(["detect", "--capture"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    let out = bin()
        .args(["detect", "--capture", "/nonexistent.lsc", "--sigs", "/nope"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = bin().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

/// `analyze`: semantic set analysis on a clean generated set exits 0; an
/// injected shadowed signature becomes a proved A001 finding (exit 1, in
/// both formats); `analyze --diff` classifies two generations and prints
/// verdict-flipping witnesses.
#[test]
fn analyze_proves_dead_signatures_and_diffs_generations() {
    let dir = std::env::temp_dir().join(format!("leaksig-analyze-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let (cap, dev, sigs) = (path("cap.lsc"), path("device.txt"), path("sigs.txt"));

    run_ok(&[
        "market", "--out", &cap, "--device", &dev, "--seed", "13", "--scale", "0.03",
    ]);
    run_ok(&[
        "generate", "--capture", &cap, "--device", &dev, "--out", &sigs, "--n", "80",
    ]);

    // Clean set: exit 0, lattice summary and cost report present.
    let out = run_ok(&["analyze", "--sigs", &sigs]);
    assert!(out.contains("signatures under Conjunction"), "{out}");
    assert!(out.contains("cost:"), "{out}");
    assert!(out.contains("0 errors"), "{out}");

    // Inject a shadow pair: sig 90 ("imei=" in body) dominates sig 91
    // ("imei=355195000000017" in body) — the analyzer must prove sig 91
    // dead (A001) and fail the gate.
    let mut text = std::fs::read_to_string(&sigs).unwrap();
    text.push_str("sig 90 2\ntok body 696d65693d3335353139 0\nend\n");
    text.push_str(
        "sig 91 2\ntok body 696d65693d333535313935303030303030303137 0\nend\n",
    );
    let bad = path("shadowed.txt");
    std::fs::write(&bad, &text).unwrap();

    let out = bin().args(["analyze", "--sigs", &bad]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[A001] sig 91"), "{stdout}");
    assert!(stdout.contains("proved dominated by signature 90"), "{stdout}");

    // JSON format renders the A-code through the stable schema.
    let out = bin()
        .args(["analyze", "--sigs", &bad, "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with(r#"{"version":1,"errors":"#), "{stdout}");
    assert!(
        stdout.contains(r#""code":"A001","severity":"error","signature_id":91,"#),
        "{stdout}"
    );

    // Generation diff: a second generation from a different seed.
    let (cap2, dev2, sigs2) = (path("cap2.lsc"), path("device2.txt"), path("sigs2.txt"));
    run_ok(&[
        "market", "--out", &cap2, "--device", &dev2, "--seed", "14", "--scale", "0.03",
    ]);
    run_ok(&[
        "generate", "--capture", &cap2, "--device", &dev2, "--out", &sigs2, "--n", "80",
    ]);
    let out = run_ok(&["analyze", "--diff", &sigs, "--new", &sigs2]);
    assert!(out.contains("generation diff under Conjunction: +"), "{out}");
    assert!(
        out.contains("added") || out.contains("removed") || out.contains("no semantic change"),
        "{out}"
    );
    // Different market seeds always change the set; each change line for
    // a synthesizable flip carries a witness packet.
    assert!(out.contains("witness:"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

/// The lint exit-code contract, pinned in both formats: warnings-only
/// reports exit 0, error reports exit 1 — the JSON rendering must not
/// change the status the text rendering gives.
#[test]
fn lint_exit_codes_match_across_formats() {
    let dir = std::env::temp_dir().join(format!("leaksig-lintexit-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let (cap, dev, sigs) = (path("cap.lsc"), path("device.txt"), path("sigs.txt"));
    run_ok(&[
        "market", "--out", &cap, "--device", &dev, "--seed", "17", "--scale", "0.03",
    ]);
    run_ok(&[
        "generate", "--capture", &cap, "--device", &dev, "--out", &sigs, "--n", "80",
    ]);

    // Warnings-only: a healthy anchor plus a boilerplate fragment
    // ("ST /" ⊂ "POST /") — L004 Warning, no Error.
    let mut text = std::fs::read_to_string(&sigs).unwrap();
    text.push_str(
        "sig 95 2\ntok body 696d65693d333535313935303030303030303137 0\ntok rline 5354202f 0\nend\n",
    );
    let warny = path("warnings-only.txt");
    std::fs::write(&warny, &text).unwrap();

    for format in ["text", "json"] {
        let out = bin()
            .args(["lint", "--sigs", &warny, "--format", format])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(0),
            "warnings-only must exit 0 in {format}:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(if format == "json" {
                r#""code":"L004""#
            } else {
                "warning[L004]"
            }),
            "{stdout}"
        );
    }

    // Error-level: a boilerplate-only signature — exit 1 in both formats.
    let mut text = std::fs::read_to_string(&sigs).unwrap();
    text.push_str("sig 96 2\ntok rline 504f5354202f78797a 0\nend\n");
    let bad = path("errors.txt");
    std::fs::write(&bad, &text).unwrap();
    for format in ["text", "json"] {
        let out = bin()
            .args(["lint", "--sigs", &bad, "--format", format])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "errors must exit 1 in {format}");
    }

    std::fs::remove_dir_all(&dir).ok();
}
